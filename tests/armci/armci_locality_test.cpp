// Locality-routing tests for the intra-node fast path: same-node contiguous
// operations on the MPI-3 backend must bypass lock/flush epochs entirely
// (window counters stay flat while the per-class locality counters rise),
// produce results bit-for-bit identical to the remote path, and surface in
// the armci-metrics-v1 export. Also covers the accumulate element-alignment
// validation on both MPI backends.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace armci {
namespace {

using mpisim::Platform;

mpisim::Config node_cfg(int nranks, int ranks_per_node,
                        Platform platform = Platform::infiniband) {
  mpisim::Config cfg;
  cfg.nranks = nranks;
  cfg.platform = platform;
  cfg.ranks_per_node = ranks_per_node;
  return cfg;
}

/// Sum of the per-window lock/flush/epoch counters of this rank's tracer.
mpisim::WinStats win_totals() {
  mpisim::WinStats total;
  for (const auto& [id, ws] : mpisim::tracer().win_stats()) {
    total.exclusive_locks += ws.exclusive_locks;
    total.shared_locks += ws.shared_locks;
    total.lock_alls += ws.lock_alls;
    total.flushes += ws.flushes;
    total.epochs += ws.epochs;
  }
  return total;
}

TEST(ArmciLocalityTest, SameNodeOpsBypassLockEpochs) {
  // infiniband co-locates 8 ranks per node, so all four ranks share one
  // node and every op rides the direct path: the epoch counters captured
  // after allocation must not move while the locality counter climbs.
  mpisim::run(node_cfg(4, 0), [] {
    Options o;
    o.backend = Backend::mpi3;
    init(o);
    const int me = mpisim::rank();
    const int right = (me + 1) % mpisim::nranks();
    std::vector<void*> bases = malloc_world(64 * sizeof(double));
    barrier();

    const mpisim::WinStats before = win_totals();
    const std::uint64_t same0 = stats().ops_same_node;
    const std::uint64_t remote0 = stats().ops_remote;

    auto* rbase = static_cast<double*>(bases[static_cast<std::size_t>(right)]);
    std::vector<double> src(64), back(64, 0.0);
    std::iota(src.begin(), src.end(), me * 100.0);
    constexpr int kRounds = 8;
    for (int r = 0; r < kRounds; ++r) {
      put(src.data(), rbase, 64 * sizeof(double), right);
      get(rbase, back.data(), 64 * sizeof(double), right);
      EXPECT_EQ(back, src);  // single writer per slice
      const double one = 1.0;
      acc(AccType::float64, &one, src.data(), rbase, 64 * sizeof(double),
          right);
      std::fill(back.begin(), back.end(), 0.0);
      get(rbase, back.data(), 64 * sizeof(double), right);
      EXPECT_DOUBLE_EQ(back[0], 2.0 * src[0]);
    }

    EXPECT_EQ(stats().ops_same_node, same0 + kRounds * 4);
    EXPECT_EQ(stats().ops_remote, remote0);
    const mpisim::WinStats after = win_totals();
    EXPECT_EQ(after.exclusive_locks, before.exclusive_locks);
    EXPECT_EQ(after.shared_locks, before.shared_locks);
    EXPECT_EQ(after.lock_alls, before.lock_alls);
    EXPECT_EQ(after.flushes, before.flushes);
    EXPECT_EQ(after.epochs, before.epochs);

    barrier();
    free(bases[static_cast<std::size_t>(me)]);
    finalize();
  });
}

TEST(ArmciLocalityTest, NbOpsTakeTheDirectPathEagerly) {
  // Deferring a memcpy-speed op buys nothing: same-node nonblocking ops
  // must complete eagerly through the fast path, with no queue to flush.
  mpisim::run(node_cfg(2, 0), [] {
    Options o;
    o.backend = Backend::mpi3;
    init(o);
    const int other = 1 - mpisim::rank();
    std::vector<void*> bases = malloc_world(8 * sizeof(std::int64_t));
    barrier();
    const std::uint64_t deferred0 = stats().nb_deferred;
    const std::uint64_t same0 = stats().ops_same_node;
    std::int64_t v = 7 + mpisim::rank();
    Request req =
        nb_put(&v, bases[static_cast<std::size_t>(other)], sizeof v, other);
    EXPECT_TRUE(req.test());  // completed at issue: nothing queued
    wait(req);
    EXPECT_EQ(stats().nb_deferred, deferred0);
    EXPECT_GT(stats().ops_same_node, same0);
    barrier();
    std::int64_t mine = 0;
    std::memcpy(&mine, bases[static_cast<std::size_t>(mpisim::rank())],
                sizeof mine);
    EXPECT_EQ(mine, 7 + other);
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

/// One deterministic round of put / scaled acc / get traffic; returns this
/// rank's final slice bytes plus everything it read back.
std::vector<std::uint8_t> locality_workload() {
  Options o;
  o.backend = Backend::mpi3;
  init(o);
  const int me = mpisim::rank();
  const int right = (me + 1) % mpisim::nranks();
  constexpr std::size_t kElems = 32;
  std::vector<void*> bases = malloc_world(kElems * sizeof(double));
  access_begin(bases[static_cast<std::size_t>(me)]);
  std::memset(bases[static_cast<std::size_t>(me)], 0, kElems * sizeof(double));
  access_end(bases[static_cast<std::size_t>(me)]);
  barrier();

  auto* rbase = static_cast<double*>(bases[static_cast<std::size_t>(right)]);
  std::vector<double> src(kElems);
  for (std::size_t i = 0; i < kElems; ++i)
    src[i] = 0.1 * static_cast<double>(i) + me;
  put(src.data(), rbase, kElems * sizeof(double), right);
  fence(right);
  const double scale = 2.5;
  acc(AccType::float64, &scale, src.data(), rbase, kElems * sizeof(double),
      right);
  fence(right);
  barrier();

  std::vector<double> back(kElems, 0.0);
  get(rbase, back.data(), kElems * sizeof(double), right);
  barrier();

  std::vector<std::uint8_t> out(2 * kElems * sizeof(double));
  access_begin(bases[static_cast<std::size_t>(me)]);
  std::memcpy(out.data(), bases[static_cast<std::size_t>(me)],
              kElems * sizeof(double));
  access_end(bases[static_cast<std::size_t>(me)]);
  std::memcpy(out.data() + kElems * sizeof(double), back.data(),
              kElems * sizeof(double));
  barrier();
  free(bases[static_cast<std::size_t>(me)]);
  finalize();
  return out;
}

TEST(ArmciLocalityTest, SameNodeResultsMatchRemoteBitForBit) {
  // The same traffic with the ranks co-located (direct path) and spread
  // one-per-node (lock/flush path) must leave bit-identical memory: the
  // fast path changes the transport, never the arithmetic.
  constexpr int kRanks = 4;
  std::vector<std::vector<std::uint8_t>> same(kRanks), remote(kRanks);
  mpisim::run(node_cfg(kRanks, 0), [&] {  // profile: 8 ranks/node
    same[static_cast<std::size_t>(mpisim::rank())] = locality_workload();
  });
  mpisim::run(node_cfg(kRanks, 1), [&] {  // every rank its own node
    remote[static_cast<std::size_t>(mpisim::rank())] = locality_workload();
  });
  for (int r = 0; r < kRanks; ++r)
    EXPECT_EQ(same[static_cast<std::size_t>(r)],
              remote[static_cast<std::size_t>(r)])
        << "rank " << r;
}

TEST(ArmciLocalityTest, MetricsExportLocalityCounters) {
  mpisim::run(node_cfg(2, 0), [] {
    Options o;
    o.backend = Backend::mpi3;
    init(o);
    const int other = 1 - mpisim::rank();
    std::vector<void*> bases = malloc_world(64);
    barrier();
    char v = 'x';
    put(&v, bases[static_cast<std::size_t>(other)], 1, other);
    const std::string json = metrics_json();
    EXPECT_NE(json.find("\"ops_same_node\":1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"ops_self\":"), std::string::npos);
    EXPECT_NE(json.find("\"ops_remote\":0"), std::string::npos);
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

class LocalityBackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(LocalityBackendTest, MisalignedAccumulateRaises) {
  // bytes % element size != 0 must raise instead of silently truncating the
  // transfer to a whole number of elements.
  mpisim::run(node_cfg(2, 1, Platform::ideal), [] {
    Options o;
    o.backend = GetParam();
    init(o);
    const int other = 1 - mpisim::rank();
    std::vector<void*> bases = malloc_world(64);
    barrier();
    double src[2] = {1.0, 2.0};
    const double one = 1.0;
    try {
      acc(AccType::float64, &one, src,
          bases[static_cast<std::size_t>(other)], 12, other);
      ADD_FAILURE() << "expected Errc::invalid_argument";
    } catch (const mpisim::MpiError& e) {
      EXPECT_EQ(e.code(), mpisim::Errc::invalid_argument) << e.what();
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, LocalityBackendTest,
                         ::testing::Values(Backend::mpi, Backend::mpi3),
                         [](const auto& info) {
                           return info.param == Backend::mpi ? "Mpi" : "Mpi3";
                         });

}  // namespace
}  // namespace armci
