#include <cstring>
// Tests for put-with-notify (producer/consumer over location consistency)
// and the nonblocking noncontiguous operation wrappers.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {
namespace {

using mpisim::Platform;

class ArmciNotifyTest : public ::testing::TestWithParam<Backend> {
 protected:
  Options opts() const {
    Options o;
    o.backend = GetParam();
    return o;
  }
};

TEST_P(ArmciNotifyTest, ProducerConsumerSeesCompleteData) {
  mpisim::run(2, Platform::infiniband, [&] {
    init(opts());
    // Consumer's global space: a data buffer plus a flag word.
    std::vector<void*> data = malloc_world(256 * sizeof(double));
    std::vector<void*> flag = malloc_world(sizeof(int));
    if (mpisim::rank() == 1) *static_cast<int*>(flag[1]) = 0;
    barrier();

    if (mpisim::rank() == 0) {
      std::vector<double> payload(256);
      std::iota(payload.begin(), payload.end(), 1.0);
      put_notify(payload.data(), data[1], 256 * sizeof(double),
                 static_cast<int*>(flag[1]), 7, 1);
    } else {
      wait_notify(static_cast<const int*>(flag[1]), 7);
      // The notify ordering guarantees the data is complete when the flag
      // flips -- every element must already be there.
      const double* d = static_cast<const double*>(data[1]);
      for (int i = 0; i < 256; ++i)
        EXPECT_DOUBLE_EQ(d[i], 1.0 + i) << "element " << i;
    }
    barrier();
    free(flag[static_cast<std::size_t>(mpisim::rank())]);
    free(data[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciNotifyTest, RepeatedHandshakes) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> data = malloc_world(sizeof(std::int64_t));
    std::vector<void*> flag = malloc_world(sizeof(int));
    if (mpisim::rank() == 1) *static_cast<int*>(flag[1]) = 0;
    barrier();
    if (mpisim::rank() == 0) {
      for (int round = 1; round <= 5; ++round) {
        const std::int64_t v = round * 11;
        put_notify(&v, data[1], sizeof v, static_cast<int*>(flag[1]), round,
                   1);
        int ack = 0;
        msg_recv(&ack, sizeof ack, 1, 42);  // consumer done with this round
      }
    } else {
      for (int round = 1; round <= 5; ++round) {
        wait_notify(static_cast<const int*>(flag[1]), round);
        std::int64_t v = 0;
        access_begin(data[1]);
        v = *static_cast<const std::int64_t*>(data[1]);
        access_end(data[1]);
        EXPECT_EQ(v, round * 11);
        msg_send(&round, sizeof round, 0, 42);
      }
    }
    barrier();
    free(flag[static_cast<std::size_t>(mpisim::rank())]);
    free(data[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciNotifyTest, WaitNotifyRequiresGlobalFlag) {
  EXPECT_THROW(mpisim::run(2, Platform::ideal,
                           [&] {
                             init(opts());
                             int local_flag = 0;
                             wait_notify(&local_flag, 1);
                           }),
               mpisim::MpiError);
}

INSTANTIATE_TEST_SUITE_P(Backends, ArmciNotifyTest,
                         ::testing::Values(Backend::mpi, Backend::native,
                                           Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::mpi: return "Mpi";
                             case Backend::native: return "Native";
                             case Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

TEST(ArmciNbNoncontigTest, NbStridedAndIovComplete) {
  mpisim::run(2, Platform::ideal, [] {
    init({});
    std::vector<void*> bases = malloc_world(1024);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<char> local(256);
      std::iota(local.begin(), local.end(), 0);
      StridedSpec s;
      s.stride_levels = 1;
      s.count = {32, 4};
      s.src_strides = {32};
      s.dst_strides = {64};
      Request r1 = nb_put_strided(local.data(), bases[1], s, 1);
      wait(r1);
      EXPECT_TRUE(r1.test());

      std::vector<char> back(256, -1);
      StridedSpec g;
      g.stride_levels = 1;
      g.count = {32, 4};
      g.src_strides = {64};
      g.dst_strides = {32};
      Request r2 = nb_get_strided(bases[1], back.data(), g, 1);
      wait(r2);
      for (int i = 0; i < 128; ++i)
        EXPECT_EQ(back[static_cast<std::size_t>(i)],
                  local[static_cast<std::size_t>(i)]);

      Giov v;
      v.bytes = 8;
      v.src = {local.data()};
      v.dst = {static_cast<char*>(bases[1]) + 512};
      Request r3 = nb_put_iov({&v, 1}, 1);
      wait(r3);
      const double one = 1.0;
      Giov a;
      a.bytes = 8;
      a.src = {local.data()};
      a.dst = {static_cast<char*>(bases[1]) + 512};
      Request r4 = nb_acc_iov(AccType::float64, &one, {&a, 1}, 1);
      wait(r4);
      Giov gv;
      gv.bytes = 8;
      gv.src = {static_cast<char*>(bases[1]) + 512};
      double out = 0;
      gv.dst = {&out};
      Request r5 = nb_get_iov({&gv, 1}, 1);
      wait(r5);
      double expect = 0;
      std::memcpy(&expect, local.data(), 8);
      EXPECT_DOUBLE_EQ(out, 2 * expect);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

}  // namespace
}  // namespace armci
