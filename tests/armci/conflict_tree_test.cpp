// Unit and property tests for the AVL conflict tree (paper §VI-B).

#include "src/armci/conflict_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "src/armci/iov.hpp"

namespace armci {
namespace {

TEST(ConflictTreeTest, EmptyTreeHasNoConflicts) {
  ConflictTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.conflicts(0, 100));
}

TEST(ConflictTreeTest, DisjointRangesInsert) {
  ConflictTree t;
  EXPECT_TRUE(t.insert(0, 9));
  EXPECT_TRUE(t.insert(20, 29));
  EXPECT_TRUE(t.insert(10, 19));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(ConflictTreeTest, ExactOverlapRejected) {
  ConflictTree t;
  EXPECT_TRUE(t.insert(10, 20));
  EXPECT_FALSE(t.insert(10, 20));
  EXPECT_EQ(t.size(), 1u);
}

TEST(ConflictTreeTest, PartialOverlapsRejected) {
  ConflictTree t;
  ASSERT_TRUE(t.insert(10, 20));
  EXPECT_FALSE(t.insert(5, 10));    // touches lo
  EXPECT_FALSE(t.insert(20, 25));   // touches hi
  EXPECT_FALSE(t.insert(12, 18));   // inside
  EXPECT_FALSE(t.insert(5, 25));    // encloses
  EXPECT_TRUE(t.insert(21, 25));
  EXPECT_TRUE(t.insert(5, 9));
  EXPECT_EQ(t.size(), 3u);
}

TEST(ConflictTreeTest, AdjacentRangesAreDisjoint) {
  // Inclusive ranges: [0,9] and [10,19] do not overlap.
  ConflictTree t;
  EXPECT_TRUE(t.insert(0, 9));
  EXPECT_TRUE(t.insert(10, 19));
}

TEST(ConflictTreeTest, SingleByteRanges) {
  ConflictTree t;
  EXPECT_TRUE(t.insert(5, 5));
  EXPECT_FALSE(t.insert(5, 5));
  EXPECT_TRUE(t.insert(4, 4));
  EXPECT_TRUE(t.insert(6, 6));
}

TEST(ConflictTreeTest, InvalidRangeRejected) {
  ConflictTree t;
  EXPECT_FALSE(t.insert(10, 5));
  EXPECT_TRUE(t.empty());
}

TEST(ConflictTreeTest, FailedInsertLeavesTreeUsable) {
  ConflictTree t;
  ASSERT_TRUE(t.insert(100, 200));
  ASSERT_FALSE(t.insert(150, 250));
  EXPECT_TRUE(t.insert(300, 400));
  EXPECT_TRUE(t.conflicts(150, 160));
  EXPECT_FALSE(t.conflicts(201, 299));
  EXPECT_TRUE(t.check_invariants());
}

TEST(ConflictTreeTest, ClearEmptiesTree) {
  ConflictTree t;
  for (std::uintptr_t i = 0; i < 100; ++i) ASSERT_TRUE(t.insert(i * 10, i * 10 + 5));
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.insert(0, 1000000));
}

TEST(ConflictTreeTest, MoveTransfersOwnership) {
  ConflictTree a;
  ASSERT_TRUE(a.insert(1, 2));
  ConflictTree b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.conflicts(1, 1));
}

TEST(ConflictTreeTest, HeightIsLogarithmicOnSortedInsert) {
  // Sorted insertion is the AVL worst case for naive BSTs; the
  // self-balancing property must keep height ~1.44 log2(n).
  ConflictTree t;
  const int n = 1 << 14;
  for (int i = 0; i < n; ++i)
    ASSERT_TRUE(t.insert(static_cast<std::uintptr_t>(i) * 16,
                         static_cast<std::uintptr_t>(i) * 16 + 7));
  EXPECT_TRUE(t.check_invariants());
  EXPECT_LE(t.height(), 21);  // 1.44 * 14 + 1
}

// Property: the tree agrees with the naive O(N^2) scanner on random
// segment sets, both overlapping and disjoint.
class ConflictTreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ConflictTreeRandomTest, AgreesWithNaiveScan) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t bytes = 64;
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng() % 200;
    // Dense address space => likely overlaps; sparse => likely disjoint.
    const std::uintptr_t space = (trial % 2 == 0) ? n * 80 : n * 8;
    std::vector<const void*> ptrs(n);
    for (auto& p : ptrs)
      p = reinterpret_cast<const void*>(0x10000 + rng() % space);
    const bool naive = iov_has_overlap_naive(ptrs, bytes);
    const bool tree = iov_has_overlap(ptrs, bytes);
    EXPECT_EQ(tree, naive) << "trial " << trial << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictTreeRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ConflictTreeTest, RandomInsertKeepsInvariants) {
  std::mt19937_64 rng(42);
  ConflictTree t;
  std::size_t inserted = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uintptr_t lo = rng() % 100000;
    const std::uintptr_t hi = lo + rng() % 50;
    if (t.insert(lo, hi)) ++inserted;
  }
  EXPECT_EQ(t.size(), inserted);
  EXPECT_TRUE(t.check_invariants());
}

// insert_merge/overlapping extend the tree for the RMA validity checker
// (src/mpisim/checker.cpp): epochs accumulate union access sets and report
// the stored range that an access collided with.

TEST(ConflictTreeMergeTest, MergeUnionsOverlappingRanges) {
  ConflictTree t;
  t.insert_merge(10, 20);
  t.insert_merge(15, 30);  // overlaps -> one node [10, 30]
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.conflicts(30, 30));
  EXPECT_FALSE(t.conflicts(31, 40));
  EXPECT_TRUE(t.check_invariants());
}

TEST(ConflictTreeMergeTest, MergeSwallowsSeveralNodes) {
  ConflictTree t;
  t.insert_merge(0, 9);
  t.insert_merge(20, 29);
  t.insert_merge(40, 49);
  t.insert_merge(5, 45);  // bridges all three
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.conflicts(0, 0));
  EXPECT_TRUE(t.conflicts(49, 49));
  EXPECT_FALSE(t.conflicts(50, 60));
  EXPECT_TRUE(t.check_invariants());
}

TEST(ConflictTreeMergeTest, MergeKeepsDisjointRangesSeparate) {
  ConflictTree t;
  t.insert_merge(0, 9);
  t.insert_merge(11, 19);  // a one-unit gap at 10
  EXPECT_EQ(t.size(), 2u);
  EXPECT_FALSE(t.conflicts(10, 10));
}

TEST(ConflictTreeMergeTest, OverlappingReportsStoredRange) {
  ConflictTree t;
  t.insert_merge(100, 200);
  std::uintptr_t lo = 0;
  std::uintptr_t hi = 0;
  EXPECT_TRUE(t.overlapping(150, 160, &lo, &hi));
  EXPECT_EQ(lo, 100u);
  EXPECT_EQ(hi, 200u);
  EXPECT_FALSE(t.overlapping(201, 300, &lo, &hi));
}

TEST(ConflictTreeMergeTest, RandomMergeAgreesWithBitset) {
  // Property check: after arbitrary merges the tree's membership matches a
  // per-unit reference bitmap, and invariants hold throughout.
  std::mt19937_64 rng(7);
  ConflictTree t;
  std::vector<bool> ref(2000, false);
  for (int i = 0; i < 500; ++i) {
    const std::uintptr_t lo = rng() % 1900;
    const std::uintptr_t hi = lo + rng() % 90;
    t.insert_merge(lo, hi);
    for (std::uintptr_t u = lo; u <= hi; ++u) ref[u] = true;
  }
  EXPECT_TRUE(t.check_invariants());
  for (std::uintptr_t u = 0; u < ref.size(); ++u)
    EXPECT_EQ(t.conflicts(u, u), static_cast<bool>(ref[u])) << "unit " << u;
}

TEST(IovOverlapTest, DisjointVectorIsClean) {
  std::vector<const void*> ptrs;
  for (int i = 0; i < 1000; ++i)
    ptrs.push_back(reinterpret_cast<const void*>(0x1000 + i * 128));
  EXPECT_FALSE(iov_has_overlap(ptrs, 128));
  EXPECT_FALSE(iov_has_overlap_naive(ptrs, 128));
}

TEST(IovOverlapTest, OneDuplicateDetected) {
  std::vector<const void*> ptrs;
  for (int i = 0; i < 1000; ++i)
    ptrs.push_back(reinterpret_cast<const void*>(0x1000 + i * 128));
  ptrs.push_back(ptrs[500]);
  EXPECT_TRUE(iov_has_overlap(ptrs, 128));
}

TEST(IovOverlapTest, ZeroByteSegmentsNeverOverlap) {
  std::vector<const void*> ptrs(10, reinterpret_cast<const void*>(0x1000));
  EXPECT_FALSE(iov_has_overlap(ptrs, 0));
}

// ---- insert_coalesce / visit (happens-before shadow-store primitives) ----

TEST(ConflictTreeTest, CoalesceAbsorbsAdjacentRanges) {
  ConflictTree t;
  t.insert_coalesce(0, 9);
  t.insert_coalesce(20, 29);
  // Adjacent on both sides: [10, 19] must fuse all three into [0, 29].
  t.insert_coalesce(10, 19);
  EXPECT_EQ(t.size(), 1u);
  std::uintptr_t lo = 1, hi = 0;
  ASSERT_TRUE(t.overlapping(15, 15, &lo, &hi));
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 29u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(ConflictTreeTest, CoalesceAbsorbsAChainOfNeighbours) {
  ConflictTree t;
  // Ten separated singleton ranges; one spanning insert adjacent to the
  // first must absorb the whole chain once the gaps are bridged.
  for (std::uintptr_t i = 0; i < 10; ++i)
    t.insert_coalesce(i * 2, i * 2);  // 0, 2, 4, ..., 18 (gaps at odds)
  EXPECT_EQ(t.size(), 10u);
  for (std::uintptr_t i = 0; i < 9; ++i)
    t.insert_coalesce(i * 2 + 1, i * 2 + 1);  // fill the gaps one by one
  EXPECT_EQ(t.size(), 1u);
  std::uintptr_t lo = 1, hi = 0;
  ASSERT_TRUE(t.overlapping(0, 0, &lo, &hi));
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 18u);
}

TEST(ConflictTreeTest, CoalesceDoesNotFuseAcrossGaps) {
  ConflictTree t;
  t.insert_coalesce(0, 9);
  t.insert_coalesce(11, 19);  // gap at 10: must stay separate
  EXPECT_EQ(t.size(), 2u);
  EXPECT_FALSE(t.conflicts(10, 10));
}

TEST(ConflictTreeTest, CoalesceAtAddressSpaceBoundsDoesNotWrap) {
  ConflictTree t;
  const std::uintptr_t max = ~static_cast<std::uintptr_t>(0);
  t.insert_coalesce(0, 0);
  t.insert_coalesce(max, max);
  EXPECT_EQ(t.size(), 2u);
  t.insert_coalesce(2, max - 2);  // adjacent to neither end range
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(ConflictTreeTest, VisitTraversesInAscendingOrder) {
  ConflictTree t;
  t.insert_coalesce(40, 49);
  t.insert_coalesce(0, 9);
  t.insert_coalesce(20, 29);
  std::vector<std::pair<std::uintptr_t, std::uintptr_t>> seen;
  t.visit([&](std::uintptr_t lo, std::uintptr_t hi) {
    seen.emplace_back(lo, hi);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].first, 0u);
  EXPECT_EQ(seen[0].second, 9u);
  EXPECT_EQ(seen[1].first, 20u);
  EXPECT_EQ(seen[1].second, 29u);
  EXPECT_EQ(seen[2].first, 40u);
  EXPECT_EQ(seen[2].second, 49u);
}

TEST(ConflictTreeTest, VisitOnEmptyTreeIsANoOp) {
  ConflictTree t;
  int calls = 0;
  t.visit([&](std::uintptr_t, std::uintptr_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace armci
