// ARMCI-level happens-before race tests (MPISIM_RMA_CHECK=race): the
// mutex-protected read-modify-write idiom is clean on every backend because
// the mutex handoff is a synchronization edge (token message on the queueing
// mutexes, release/acquire channel on the native backend), while the same
// read WITHOUT the mutex races against the critical section's published
// put. put_notify/wait_notify is likewise clean: the notify flag is a
// synchronization word (exempt from checking itself) whose channel edge
// orders the payload. Also pins the armci::stats()/armci-metrics-v1 export
// of the race counters.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/armci/metrics.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {
namespace {

using mpisim::Platform;

mpisim::Config race_cfg(int nranks) {
  mpisim::Config cfg;
  cfg.nranks = nranks;
  cfg.platform = Platform::ideal;
  cfg.check_conflicts = false;
  cfg.rma_check = mpisim::RmaCheck::race;
  return cfg;
}

class ArmciHbRaceTest : public ::testing::TestWithParam<Backend> {
 protected:
  Options opts() const {
    Options o;
    o.backend = GetParam();
    return o;
  }
};

// Negative: contended mutex-protected increments from both ranks. Every
// critical section's put is ordered into the next holder's reads by the
// mutex handoff, so the detector stays silent under real contention.
TEST_P(ArmciHbRaceTest, MutexProtectedRmwIsClean) {
  mpisim::run(race_cfg(2), [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(sizeof(std::int64_t));
    if (mpisim::rank() == 0) *static_cast<std::int64_t*>(bases[0]) = 0;
    create_mutexes(1);
    barrier();
    const int iters = 10;
    for (int i = 0; i < iters; ++i) {
      lock(0, 0);
      std::int64_t v = 0;
      get(bases[0], &v, sizeof v, 0);
      ++v;
      put(&v, bases[0], sizeof v, 0);
      fence(0);
      unlock(0, 0);
    }
    barrier();
    if (mpisim::rank() == 0)
      EXPECT_EQ(*static_cast<std::int64_t*>(bases[0]), 2 * iters);
    EXPECT_EQ(stats().rma_races, 0u);
    // The per-class counters are exported under armci-metrics-v1.
    EXPECT_NE(metrics_json().find("\"rma_race\":{\"ww\":0,"),
              std::string::npos);
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    destroy_mutexes();
    finalize();
  });
}

// Negative: the producer/consumer notify idiom. The flag word itself is
// exempt (a sync word, like an atomic under TSan); the payload read after
// wait_notify is ordered by the notify channel edge.
TEST_P(ArmciHbRaceTest, NotifyOrdersThePayload) {
  mpisim::run(race_cfg(2), [&] {
    init(opts());
    std::vector<void*> data = malloc_world(sizeof(std::int64_t));
    std::vector<void*> flag = malloc_world(sizeof(int));
    if (mpisim::rank() == 1) *static_cast<int*>(flag[1]) = 0;
    barrier();
    if (mpisim::rank() == 0) {
      const std::int64_t v = 42;
      put_notify(&v, data[1], sizeof v, static_cast<int*>(flag[1]), 7, 1);
    } else {
      wait_notify(static_cast<const int*>(flag[1]), 7);
      access_begin(data[1]);
      EXPECT_EQ(*static_cast<const std::int64_t*>(data[1]), 42);
      access_end(data[1]);
    }
    barrier();
    EXPECT_EQ(stats().rma_races, 0u);
    free(flag[static_cast<std::size_t>(mpisim::rank())]);
    free(data[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, ArmciHbRaceTest,
                         ::testing::Values(Backend::mpi, Backend::native,
                                           Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::mpi: return "Mpi";
                             case Backend::native: return "Native";
                             case Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

// Positive: the same counter read WITHOUT the mutex. Restricted to the
// backends whose data path creates no per-op lock-slot edge (the mpi2
// backend serializes every op through an exclusive epoch, which IS an
// ordering, so the unprotected read there is merely lucky -- not a
// provable race).
class ArmciHbRacePositiveTest : public ArmciHbRaceTest {};

TEST_P(ArmciHbRacePositiveTest, UnprotectedReadOfMutexGuardedCounterRaces) {
  std::atomic<bool> ready{false};
  mpisim::Config cfg = race_cfg(3);
  // Separate nodes, and the counter hosted on an otherwise-idle third
  // rank, so BOTH contenders go through the true remote path. The native
  // backend is always a direct access (class shm); mpi3 implements put as
  // accumulate(replace) for element-wise atomicity, so the unordered get
  // against it classifies as acc_mix.
  cfg.ranks_per_node = 1;
  const char* want_class =
      GetParam() == Backend::native ? "[shm]" : "[acc_mix]";
  const int host = 2;
  mpisim::run(cfg, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(sizeof(std::int64_t));
    if (mpisim::rank() == host)
      *static_cast<std::int64_t*>(bases[static_cast<std::size_t>(host)]) = 0;
    void* const counter = bases[static_cast<std::size_t>(host)];
    create_mutexes(1);
    barrier();
    if (mpisim::rank() == 0) {
      lock(0, host);
      std::int64_t v = 0;
      get(counter, &v, sizeof v, host);
      ++v;
      put(&v, counter, sizeof v, host);
      fence(host);
      unlock(0, host);
      ready.store(true, std::memory_order_release);
    } else if (mpisim::rank() == 1) {
      while (!ready.load(std::memory_order_acquire))
        std::this_thread::yield();
      std::int64_t v = 0;
      try {
        get(counter, &v, sizeof v, host);  // no mutex: nothing orders us
        ADD_FAILURE() << "expected Errc::rma_race";
      } catch (const mpisim::MpiError& e) {
        EXPECT_EQ(e.code(), mpisim::Errc::rma_race) << e.what();
        const std::string msg = e.what();
        EXPECT_NE(msg.find(want_class), std::string::npos) << msg;
        EXPECT_NE(msg.find("races with rank 0's"), std::string::npos) << msg;
        EXPECT_NE(msg.find("missing edge"), std::string::npos) << msg;
      }
      EXPECT_GE(stats().rma_races, 1u);
      reset_stats();
      EXPECT_EQ(stats().rma_races, 0u);  // baseline resets with the rest
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    destroy_mutexes();
    finalize();
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, ArmciHbRacePositiveTest,
                         ::testing::Values(Backend::native, Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::mpi: return "Mpi";
                             case Backend::native: return "Native";
                             case Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

// ---------------------------------------------------------------------------
// Progress-engine retirement edge (nb.cpp deferred-op contracts)
// ---------------------------------------------------------------------------

// The CI matrix re-runs this binary under MPISIM_RMA_CHECK=abort/warn,
// which overrides race_cfg's detector choice; the progress-race tests
// depend on race semantics specifically, so they skip themselves there.
#define SKIP_UNLESS_RACE_MODE()                                             \
  do {                                                                      \
    const char* rc_ = std::getenv("MPISIM_RMA_CHECK");                      \
    if (rc_ != nullptr && std::string(rc_) != "race")                       \
      GTEST_SKIP() << "MPISIM_RMA_CHECK=" << rc_                            \
                   << " overrides the race detector";                       \
  } while (0)

// Deferral-capable backends only: the native backend never defers, so the
// persona never holds a contract there.
class ArmciProgressRaceTest : public ::testing::TestWithParam<Backend> {
 protected:
  Options opts() const {
    Options o;
    o.backend = GetParam();
    o.progress = true;
    o.no_local_copy = true;  // the self-touch must hit the real data path
    return o;
  }
};

char* gslice(std::vector<void*>& bases, int r) {
  return static_cast<char*>(bases[static_cast<std::size_t>(r)]);
}

// Positive: a deferred nb_get's destination inside our own global slice is
// charged to the progress persona as a pending write. Touching that region
// before the engine retires the batch races -- the persona is a distinct
// identity, and nothing orders the app's read after its unretired write.
TEST_P(ArmciProgressRaceTest, TouchBeforeRetirementRaces) {
  SKIP_UNLESS_RACE_MODE();
  mpisim::Config cfg = race_cfg(2);
  cfg.ranks_per_node = 1;  // rank 1 remote: the nb_get actually defers
  mpisim::run(cfg, [&] {
    init(opts());
    constexpr std::size_t kBytes = 64;
    std::vector<void*> bases = malloc_world(kBytes);
    std::memset(gslice(bases, mpisim::rank()), mpisim::rank() + 1, kBytes);
    barrier();
    if (mpisim::rank() == 0) {
      Request req = nb_get(gslice(bases, 1), gslice(bases, 0), kBytes, 1);
      char priv[kBytes] = {0};
      try {
        get(bases[0], priv, kBytes, 0);  // reads the contracted region
        ADD_FAILURE() << "expected Errc::rma_race";
      } catch (const mpisim::MpiError& e) {
        EXPECT_EQ(e.code(), mpisim::Errc::rma_race) << e.what();
        EXPECT_NE(std::string(e.what()).find("progress persona"),
                  std::string::npos)
            << e.what();
      }
      EXPECT_GE(stats().rma_races, 1u);
      // Draining the queue may re-report against the racy read's summary;
      // tolerate it -- the batch itself must still complete and land.
      try {
        wait(req);
      } catch (const mpisim::MpiError& e) {
        EXPECT_EQ(e.code(), mpisim::Errc::rma_race) << e.what();
      }
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

// Negative: the same touch from an operation-level completion callback.
// The callback runs from the tick AFTER the persona retired the batch
// (persona_retire joins owner <- persona), so the read is ordered and
// clean -- and the fetched data is already there to read.
TEST_P(ArmciProgressRaceTest, CallbackAfterRetirementIsClean) {
  SKIP_UNLESS_RACE_MODE();
  mpisim::Config cfg = race_cfg(2);
  cfg.ranks_per_node = 1;
  mpisim::run(cfg, [&] {
    init(opts());
    constexpr std::size_t kBytes = 64;
    std::vector<void*> bases = malloc_world(kBytes);
    std::memset(gslice(bases, mpisim::rank()), mpisim::rank() + 1, kBytes);
    barrier();
    if (mpisim::rank() == 0) {
      Request req = nb_get(gslice(bases, 1), gslice(bases, 0), kBytes, 1);
      bool fired = false;
      on_complete(req, Completion::operation,
                  [&](std::exception_ptr err) {
                    EXPECT_EQ(err, nullptr);
                    char priv[kBytes] = {0};
                    get(bases[0], priv, kBytes, 0);  // post-retirement touch
                    EXPECT_EQ(priv[0], 2);  // rank 1's fill pattern
                    EXPECT_EQ(priv[kBytes - 1], 2);
                    fired = true;
                  });
      mpisim::clock().advance_compute(50'000.0);  // issue + complete ticks
      EXPECT_TRUE(fired);
      EXPECT_TRUE(req.test());
      EXPECT_EQ(stats().rma_races, 0u);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, ArmciProgressRaceTest,
                         ::testing::Values(Backend::mpi, Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::mpi: return "Mpi";
                             case Backend::native: return "Native";
                             case Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

// Positive, mpi3 split completion: a SOURCE-level callback fires at the
// issue tick, while the get is still in flight to the target -- the
// persona's pending write is unretired, so touching the destination from
// that callback races. The throw propagates out of advance_compute.
TEST(ArmciProgressSourceRaceTest, SourceCallbackTouchRacesOnMpi3) {
  SKIP_UNLESS_RACE_MODE();
  mpisim::Config cfg = race_cfg(2);
  cfg.ranks_per_node = 1;
  mpisim::run(cfg, [&] {
    Options o;
    o.backend = Backend::mpi3;
    o.progress = true;
    o.no_local_copy = true;
    init(o);
    constexpr std::size_t kBytes = 64;
    std::vector<void*> bases = malloc_world(kBytes);
    std::memset(gslice(bases, mpisim::rank()), mpisim::rank() + 1, kBytes);
    barrier();
    if (mpisim::rank() == 0) {
      Request req = nb_get(gslice(bases, 1), gslice(bases, 0), kBytes, 1);
      on_complete(req, Completion::source, [&](std::exception_ptr err) {
        EXPECT_EQ(err, nullptr);
        char priv[kBytes] = {0};
        get(bases[0], priv, kBytes, 0);  // destination still in flight
        ADD_FAILURE() << "source-level touch of an unretired get "
                         "destination was not flagged";
      });
      try {
        mpisim::clock().advance_compute(15'000.0);  // one tick: issue
        ADD_FAILURE() << "expected Errc::rma_race out of the tick";
      } catch (const mpisim::MpiError& e) {
        EXPECT_EQ(e.code(), mpisim::Errc::rma_race) << e.what();
        EXPECT_NE(std::string(e.what()).find("progress persona"),
                  std::string::npos)
            << e.what();
      }
      EXPECT_GE(stats().rma_races, 1u);
      try {
        wait(req);
      } catch (const mpisim::MpiError& e) {
        EXPECT_EQ(e.code(), mpisim::Errc::rma_race) << e.what();
      }
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

}  // namespace
}  // namespace armci
