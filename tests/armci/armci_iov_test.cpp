// Integration tests for generalized I/O vector operations across every
// transfer method (paper §VI-A/B) and both backends.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {
namespace {

using mpisim::Platform;

struct IovCase {
  Backend backend;
  IovMethod method;
};

std::string iov_case_name(const ::testing::TestParamInfo<IovCase>& info) {
  std::string s = info.param.backend == Backend::mpi      ? "Mpi"
                  : info.param.backend == Backend::native ? "Native"
                                                          : "Mpi3";
  switch (info.param.method) {
    case IovMethod::conservative: return s + "Conservative";
    case IovMethod::batched: return s + "Batched";
    case IovMethod::direct: return s + "Direct";
    case IovMethod::auto_: return s + "Auto";
  }
  return s;
}

class ArmciIovTest : public ::testing::TestWithParam<IovCase> {
 protected:
  Options opts() const {
    Options o;
    o.backend = GetParam().backend;
    o.iov_method = GetParam().method;
    return o;
  }

  /// Build a descriptor of n disjoint `bytes`-sized segments: local
  /// segments packed, remote segments spread with gaps.
  static Giov make_spread(void* local, void* remote, std::size_t n,
                          std::size_t bytes, std::size_t remote_stride,
                          bool remote_is_dst) {
    Giov g;
    g.bytes = bytes;
    for (std::size_t i = 0; i < n; ++i) {
      void* l = static_cast<char*>(local) + i * bytes;
      void* r = static_cast<char*>(remote) + i * remote_stride;
      if (remote_is_dst) {
        g.src.push_back(l);
        g.dst.push_back(r);
      } else {
        g.src.push_back(r);
        g.dst.push_back(l);
      }
    }
    return g;
  }
};

TEST_P(ArmciIovTest, PutScattersSegments) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(4096);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<char> local(512);
      std::iota(local.begin(), local.end(), 0);
      Giov g = make_spread(local.data(), bases[1], 16, 32, 128, true);
      put_iov({&g, 1}, 1);
      fence(1);
    }
    barrier();
    if (mpisim::rank() == 1) {
      const char* mine = static_cast<const char*>(bases[1]);
      for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t b = 0; b < 32; ++b)
          EXPECT_EQ(mine[i * 128 + b], static_cast<char>(i * 32 + b));
      // Gaps untouched (zero-initialized by the allocator? ensure via put).
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciIovTest, GetGathersSegments) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(4096);
    auto* mine = static_cast<char*>(
        bases[static_cast<std::size_t>(mpisim::rank())]);
    for (int i = 0; i < 4096; ++i)
      mine[i] = static_cast<char>((mpisim::rank() * 7 + i) % 127);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<char> local(16 * 64, 0);
      Giov g = make_spread(local.data(), bases[1], 16, 64, 256, false);
      get_iov({&g, 1}, 1);
      for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t b = 0; b < 64; ++b)
          EXPECT_EQ(local[i * 64 + b],
                    static_cast<char>((7 + i * 256 + b) % 127));
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciIovTest, AccumulateWithScale) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(1024 * sizeof(double));
    auto* mine = static_cast<double*>(
        bases[static_cast<std::size_t>(mpisim::rank())]);
    for (int i = 0; i < 1024; ++i) mine[i] = 5.0;
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<double> local(8 * 4);
      std::iota(local.begin(), local.end(), 1.0);
      Giov g = make_spread(local.data(), bases[1], 8, 4 * sizeof(double),
                           32 * sizeof(double), true);
      const double scale = 10.0;
      acc_iov(AccType::float64, &scale, {&g, 1}, 1);
      fence(1);
    }
    barrier();
    if (mpisim::rank() == 1) {
      for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t e = 0; e < 4; ++e)
          EXPECT_DOUBLE_EQ(mine[i * 32 + e], 5.0 + 10.0 * (i * 4 + e + 1));
      EXPECT_DOUBLE_EQ(mine[4], 5.0);  // gap untouched
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciIovTest, SegmentsAcrossTwoAllocations) {
  // The conservative and auto methods must handle segments that live in
  // different GMRs; direct/batched require a single GMR, so restrict.
  const IovMethod m = GetParam().method;
  if (m == IovMethod::direct || m == IovMethod::batched) GTEST_SKIP();
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> a = malloc_world(256);
    std::vector<void*> b = malloc_world(256);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<char> local(64, 'q');
      Giov g;
      g.bytes = 32;
      g.src = {local.data(), local.data() + 32};
      g.dst = {a[1], b[1]};
      put_iov({&g, 1}, 1);
      fence(1);
    }
    barrier();
    if (mpisim::rank() == 1) {
      EXPECT_EQ(static_cast<char*>(a[1])[31], 'q');
      EXPECT_EQ(static_cast<char*>(b[1])[0], 'q');
    }
    barrier();
    free(b[static_cast<std::size_t>(mpisim::rank())]);
    free(a[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciIovTest, GlobalLocalSegmentsAreStaged) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> a = malloc_world(512);
    std::vector<void*> b = malloc_world(512);
    auto* mine_a = static_cast<char*>(
        a[static_cast<std::size_t>(mpisim::rank())]);
    std::memset(mine_a, 'L', 512);
    barrier();
    if (mpisim::rank() == 0) {
      // Local segments live in my slice of `a` (global space).
      Giov g = make_spread(mine_a, b[1], 4, 64, 128, true);
      put_iov({&g, 1}, 1);
      fence(1);
    }
    barrier();
    if (mpisim::rank() == 1) { EXPECT_EQ(static_cast<char*>(b[1])[0], 'L'); }
    barrier();
    free(b[static_cast<std::size_t>(mpisim::rank())]);
    free(a[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciIovTest, ManySmallSegments) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    const std::size_t n = 1024;
    std::vector<void*> bases = malloc_world(n * 16);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<char> local(n * 8);
      for (std::size_t i = 0; i < local.size(); ++i)
        local[i] = static_cast<char>(i % 100);
      Giov g = make_spread(local.data(), bases[1], n, 8, 16, true);
      put_iov({&g, 1}, 1);
      std::vector<char> back(n * 8, 0);
      Giov r = make_spread(back.data(), bases[1], n, 8, 16, false);
      get_iov({&r, 1}, 1);
      EXPECT_EQ(back, local);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Methods, ArmciIovTest,
    ::testing::Values(IovCase{Backend::mpi, IovMethod::conservative},
                      IovCase{Backend::mpi, IovMethod::batched},
                      IovCase{Backend::mpi, IovMethod::direct},
                      IovCase{Backend::mpi, IovMethod::auto_},
                      IovCase{Backend::native, IovMethod::direct},
                      IovCase{Backend::mpi3, IovMethod::direct}),
    iov_case_name);

// Batched-limit plumbing: a small B forces epoch re-acquisition; results
// must be identical.
TEST(ArmciIovBatchTest, SmallBatchLimitStillCorrect) {
  for (std::size_t limit : {1u, 3u, 16u, 0u}) {
    mpisim::run(2, Platform::ideal, [&] {
      Options o;
      o.backend = Backend::mpi;
      o.iov_method = IovMethod::batched;
      o.iov_batched_limit = limit;
      init(o);
      std::vector<void*> bases = malloc_world(2048);
      barrier();
      if (mpisim::rank() == 0) {
        std::vector<char> local(640);
        std::iota(local.begin(), local.end(), 0);
        Giov g;
        g.bytes = 64;
        for (std::size_t i = 0; i < 10; ++i) {
          g.src.push_back(local.data() + i * 64);
          g.dst.push_back(static_cast<char*>(bases[1]) + i * 128);
        }
        put_iov({&g, 1}, 1);
        std::vector<char> back(640, 0);
        Giov r;
        r.bytes = 64;
        for (std::size_t i = 0; i < 10; ++i) {
          r.src.push_back(static_cast<char*>(bases[1]) + i * 128);
          r.dst.push_back(back.data() + i * 64);
        }
        get_iov({&r, 1}, 1);
        EXPECT_EQ(back, local);
      }
      barrier();
      free(bases[static_cast<std::size_t>(mpisim::rank())]);
      finalize();
    });
  }
}

// §VI-B: overlapping segments under the direct method are erroneous (the
// simulator's conflict checker plays the part of the MPI error); the auto
// method must detect the overlap and fall back to conservative, which
// handles it safely.
TEST(ArmciIovAutoTest, OverlapFallsBackToConservative) {
  mpisim::run(2, Platform::ideal, [&] {
    Options o;
    o.backend = Backend::mpi;
    o.iov_method = IovMethod::auto_;
    init(o);
    std::vector<void*> bases = malloc_world(256);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<char> local(64, 'x');
      Giov g;
      g.bytes = 32;
      g.src = {local.data(), local.data() + 32};
      g.dst = {bases[1], static_cast<char*>(bases[1]) + 16};  // overlap!
      put_iov({&g, 1}, 1);  // conservative fallback: no error
      fence(1);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

// Regression for the batched staging predicate: an accumulate with the
// identity scale from private (non-global) buffers needs no temp copy --
// the segments go to MPI_Accumulate directly and no staging epoch is taken.
TEST(ArmciIovBatchedTest, IdentityScaleAccSkipsStaging) {
  mpisim::run(2, Platform::ideal, [&] {
    Options o;
    o.backend = Backend::mpi;
    o.iov_method = IovMethod::batched;
    init(o);
    std::vector<void*> bases = malloc_world(512);
    barrier();
    if (mpisim::rank() == 1) {
      auto* mine = static_cast<double*>(bases[1]);
      for (int i = 0; i < 64; ++i) mine[i] = 1.0;
    }
    barrier();
    reset_stats();
    if (mpisim::rank() == 0) {
      std::vector<double> local(16);
      std::iota(local.begin(), local.end(), 1.0);
      const double one = 1.0;
      Giov g;
      g.bytes = 4 * sizeof(double);
      for (int i = 0; i < 4; ++i) {
        g.src.push_back(local.data() + i * 4);
        g.dst.push_back(static_cast<double*>(bases[1]) + i * 8);
      }
      acc_iov(AccType::float64, &one, {&g, 1}, 1);
      fence(1);
      EXPECT_EQ(stats().staged_local_copies, 0u);
    }
    barrier();
    if (mpisim::rank() == 1) {
      const auto* mine = static_cast<const double*>(bases[1]);
      for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
          EXPECT_EQ(mine[i * 8 + j], 1.0 + (i * 4 + j + 1));
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST(ArmciIovDirectTest, OverlapUnderDirectIsErroneous) {
  EXPECT_THROW(
      mpisim::run(2, Platform::ideal,
                  [&] {
                    Options o;
                    o.backend = Backend::mpi;
                    o.iov_method = IovMethod::direct;
                    init(o);
                    std::vector<void*> bases = malloc_world(256);
                    barrier();
                    if (mpisim::rank() == 0) {
                      std::vector<char> local(64, 'x');
                      Giov g;
                      g.bytes = 32;
                      g.src = {local.data(), local.data() + 32};
                      g.dst = {bases[1],
                               static_cast<char*>(bases[1]) + 16};
                      put_iov({&g, 1}, 1);
                    }
                    barrier();
                  }),
      mpisim::MpiError);
}

TEST(ArmciIovDirectTest, MultiGmrUnderDirectIsErroneous) {
  EXPECT_THROW(
      mpisim::run(2, Platform::ideal,
                  [&] {
                    Options o;
                    o.backend = Backend::mpi;
                    o.iov_method = IovMethod::direct;
                    init(o);
                    std::vector<void*> a = malloc_world(64);
                    std::vector<void*> b = malloc_world(64);
                    barrier();
                    if (mpisim::rank() == 0) {
                      std::vector<char> local(64, 'x');
                      Giov g;
                      g.bytes = 32;
                      g.src = {local.data(), local.data() + 32};
                      g.dst = {a[1], b[1]};
                      put_iov({&g, 1}, 1);
                    }
                    barrier();
                  }),
      mpisim::MpiError);
}

}  // namespace
}  // namespace armci
