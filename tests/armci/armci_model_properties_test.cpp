// Property sweeps over the virtual-time cost model and runtime options:
// invariants that must hold on EVERY platform profile regardless of
// calibration (monotonicity, method ordering, option semantics).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {
namespace {

using mpisim::Platform;

class ModelPropertyTest : public ::testing::TestWithParam<Platform> {};

/// Virtual ns for one contiguous op of `bytes` on the MPI backend.
double op_ns(Platform plat, Backend backend, std::size_t bytes, bool is_get) {
  double result = 0.0;
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = plat;
  mpisim::run(cfg, [&] {
    Options o;
    o.backend = backend;
    init(o);
    std::vector<void*> bases = malloc_world(bytes);
    auto* local = static_cast<char*>(malloc_local(bytes));
    barrier();
    if (mpisim::rank() == 0) {
      // Warm-up (registration caches, allocator effects) for either kind.
      if (is_get)
        get(bases[1], local, bytes, 1);
      else
        put(local, bases[1], bytes, 1);
      const double t0 = mpisim::clock().now_ns();
      if (is_get)
        get(bases[1], local, bytes, 1);
      else
        put(local, bases[1], bytes, 1);
      result = mpisim::clock().now_ns() - t0;
    }
    barrier();
    free_local(local);
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
  return result;
}

TEST_P(ModelPropertyTest, CostIsMonotoneInSize) {
  const Platform plat = GetParam();
  for (Backend b : {Backend::mpi, Backend::native, Backend::mpi3}) {
    double prev = 0.0;
    for (std::size_t bytes : {64u, 4096u, 262144u}) {
      const double ns = op_ns(plat, b, bytes, /*is_get=*/false);
      EXPECT_GE(ns, prev) << "backend " << static_cast<int>(b) << " bytes "
                          << bytes;
      prev = ns;
    }
  }
}

TEST_P(ModelPropertyTest, GetAtLeastAsExpensiveAsPut) {
  // A blocking get must complete remotely; a put only needs local
  // completion, so per-op virtual cost of get >= put. This holds for the
  // MPI-2 and native backends; the MPI-3 backend is excluded because its
  // puts are accumulate(REPLACE), which pay the (slower) accumulate wire
  // rate and can legitimately exceed a get.
  const Platform plat = GetParam();
  for (Backend b : {Backend::mpi, Backend::native}) {
    const double put_ns = op_ns(plat, b, 4096, false);
    const double get_ns = op_ns(plat, b, 4096, true);
    EXPECT_GE(get_ns, put_ns * 0.99) << "backend " << static_cast<int>(b);
  }
}

/// Strided bandwidth proxy: virtual ns for a 64-segment transfer.
double strided_ns(Platform plat, StridedMethod m, std::size_t seg) {
  double result = 0.0;
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = plat;
  mpisim::run(cfg, [&] {
    Options o;
    o.backend = Backend::mpi;
    o.strided_method = m;
    init(o);
    const std::size_t nseg = 64;
    std::vector<void*> bases = malloc_world(nseg * seg * 2);
    auto* local = static_cast<char*>(malloc_local(nseg * seg));
    barrier();
    if (mpisim::rank() == 0) {
      StridedSpec s;
      s.stride_levels = 1;
      s.count = {seg, nseg};
      s.src_strides = {seg};
      s.dst_strides = {seg * 2};
      put_strided(local, bases[1], s, 1);  // warm-up
      const double t0 = mpisim::clock().now_ns();
      put_strided(local, bases[1], s, 1);
      result = mpisim::clock().now_ns() - t0;
    }
    barrier();
    free_local(local);
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
  return result;
}

TEST_P(ModelPropertyTest, ConservativeIsNeverTheFastestStridedMethod) {
  // One epoch per segment cannot beat methods that amortize epochs.
  const Platform plat = GetParam();
  for (std::size_t seg : {16u, 1024u}) {
    const double consrv =
        strided_ns(plat, StridedMethod::iov_conservative, seg);
    const double batched = strided_ns(plat, StridedMethod::iov_batched, seg);
    const double direct = strided_ns(plat, StridedMethod::direct, seg);
    EXPECT_GE(consrv, batched * 0.999) << "seg " << seg;
    EXPECT_GE(consrv, direct * 0.999) << "seg " << seg;
  }
}

TEST_P(ModelPropertyTest, DirectAndIovDirectAreEquivalent) {
  // Both hand one datatype-described operation to the runtime; their
  // virtual cost must agree to within datatype-construction noise.
  const Platform plat = GetParam();
  const double direct = strided_ns(plat, StridedMethod::direct, 256);
  const double iov_direct = strided_ns(plat, StridedMethod::iov_direct, 256);
  EXPECT_NEAR(direct, iov_direct, 0.05 * direct);
}

INSTANTIATE_TEST_SUITE_P(Platforms, ModelPropertyTest,
                         ::testing::ValuesIn(std::vector<Platform>(
                             std::begin(mpisim::kPaperPlatforms),
                             std::end(mpisim::kPaperPlatforms))),
                         [](const auto& info) {
                           return std::string(mpisim::platform_id(info.param));
                         });

// ---- Option semantics ----

TEST(ArmciOptionsTest, NoLocalCopySkipsStagingButStaysCorrect) {
  // On coherent platforms many MPI implementations allow concurrent local
  // access; no_local_copy uses the global buffer directly as the origin.
  mpisim::run(2, Platform::ideal, [] {
    Options o;
    o.backend = Backend::mpi;
    o.no_local_copy = true;
    init(o);
    std::vector<void*> a = malloc_world(64);
    std::vector<void*> b = malloc_world(64);
    auto* mine_a = static_cast<char*>(
        a[static_cast<std::size_t>(mpisim::rank())]);
    std::memset(mine_a, 'N', 64);
    barrier();
    if (mpisim::rank() == 0) {
      put(mine_a, b[1], 64, 1);  // global local buffer, no staging copy
      char back[64] = {};
      get(b[1], back, 64, 1);
      EXPECT_EQ(back[0], 'N');
      EXPECT_EQ(back[63], 'N');
    }
    barrier();
    free(b[static_cast<std::size_t>(mpisim::rank())]);
    free(a[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST(ArmciOptionsTest, ConflictCheckingCanBeDisabled) {
  // With Config::check_conflicts off, the MPI-2-erroneous overlap below is
  // not detected (production mode trades checking for speed); the run must
  // complete without raising.
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = Platform::ideal;
  cfg.check_conflicts = false;
  mpisim::run(cfg, [] {
    init({});
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      Options o;  // (defaults; direct method would error when checked)
      (void)o;
      std::vector<char> local(64, 'x');
      Giov g;
      g.bytes = 32;
      g.src = {local.data(), local.data() + 32};
      g.dst = {bases[1], static_cast<char*>(bases[1]) + 16};  // overlap
      // Force the direct method through the option-independent API.
      put_iov({&g, 1}, 1);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

}  // namespace
}  // namespace armci
