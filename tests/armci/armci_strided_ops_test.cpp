// Integration tests for strided put/get/acc across all strided methods
// (paper §VI-C) and both backends, on 2-d and 3-d patches.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {
namespace {

using mpisim::Platform;

struct StridedCase {
  Backend backend;
  StridedMethod method;
};

std::string strided_case_name(
    const ::testing::TestParamInfo<StridedCase>& info) {
  std::string s = info.param.backend == Backend::mpi      ? "Mpi"
                  : info.param.backend == Backend::native ? "Native"
                                                          : "Mpi3";
  switch (info.param.method) {
    case StridedMethod::direct: return s + "Direct";
    case StridedMethod::iov_direct: return s + "IovDirect";
    case StridedMethod::iov_batched: return s + "IovBatched";
    case StridedMethod::iov_conservative: return s + "IovConservative";
  }
  return s;
}

class ArmciStridedTest : public ::testing::TestWithParam<StridedCase> {
 protected:
  Options opts() const {
    Options o;
    o.backend = GetParam().backend;
    o.strided_method = GetParam().method;
    return o;
  }
};

// 2-d: copy a rows x cols-byte patch between differently pitched matrices.
TEST_P(ArmciStridedTest, PutGetPatch2D) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    // Remote: 16 rows x 64 bytes. Local: 8 rows x 48 bytes.
    std::vector<void*> bases = malloc_world(16 * 64);
    // Global memory is not zero-initialized (real ARMCI_Malloc isn't
    // either): zero the target slice so the untouched-byte checks below
    // have a defined baseline.
    if (mpisim::rank() == 1)
      std::memset(bases[1], 0, 16 * 64);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<char> local(8 * 48);
      std::iota(local.begin(), local.end(), 0);

      StridedSpec s;
      s.stride_levels = 1;
      s.count = {32, 6};       // 6 rows of 32 bytes
      s.src_strides = {48};    // local pitch
      s.dst_strides = {64};    // remote pitch
      // Place the patch at remote row 2, column 8.
      char* rbase = static_cast<char*>(bases[1]) + 2 * 64 + 8;
      put_strided(local.data(), rbase, s, 1);

      std::vector<char> back(8 * 48, -1);
      StridedSpec r;
      r.stride_levels = 1;
      r.count = {32, 6};
      r.src_strides = {64};
      r.dst_strides = {48};
      get_strided(rbase, back.data(), r, 1);
      for (std::size_t row = 0; row < 6; ++row)
        for (std::size_t b = 0; b < 32; ++b)
          EXPECT_EQ(back[row * 48 + b], local[row * 48 + b]);
    }
    barrier();
    if (mpisim::rank() == 1) {
      const char* mine = static_cast<const char*>(bases[1]);
      EXPECT_EQ(mine[2 * 64 + 8], 0);
      EXPECT_EQ(mine[3 * 64 + 8], 48);
      EXPECT_EQ(mine[2 * 64 + 7], 0);  // just before patch: untouched
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciStridedTest, Acc3DPatch) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    // Remote 3-d array of doubles: 4 planes x 6 rows x 8 cols.
    const std::size_t planes = 4, rows = 6, cols = 8;
    std::vector<void*> bases =
        malloc_world(planes * rows * cols * sizeof(double));
    auto* mine = static_cast<double*>(
        bases[static_cast<std::size_t>(mpisim::rank())]);
    for (std::size_t i = 0; i < planes * rows * cols; ++i) mine[i] = 1.0;
    barrier();
    if (mpisim::rank() == 0) {
      // 2x3x4-double patch at (1, 2, 3).
      std::vector<double> local(2 * 3 * 4);
      std::iota(local.begin(), local.end(), 1.0);
      StridedSpec s;
      s.stride_levels = 2;
      s.count = {4 * sizeof(double), 3, 2};
      s.src_strides = {4 * sizeof(double), 12 * sizeof(double)};
      s.dst_strides = {cols * sizeof(double), rows * cols * sizeof(double)};
      double* rbase = static_cast<double*>(bases[1]) +
                      1 * rows * cols + 2 * cols + 3;
      const double scale = 2.0;
      acc_strided(AccType::float64, &scale, local.data(), rbase, s, 1);
      fence(1);
    }
    barrier();
    if (mpisim::rank() == 1) {
      for (std::size_t p = 0; p < 2; ++p)
        for (std::size_t r = 0; r < 3; ++r)
          for (std::size_t c = 0; c < 4; ++c) {
            const std::size_t idx =
                (p + 1) * rows * cols + (r + 2) * cols + (c + 3);
            const double v = 1.0 + 2.0 * (p * 12 + r * 4 + c + 1);
            EXPECT_DOUBLE_EQ(mine[idx], v);
          }
      EXPECT_DOUBLE_EQ(mine[0], 1.0);
      EXPECT_DOUBLE_EQ(mine[1 * rows * cols + 2 * cols + 2], 1.0);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciStridedTest, DegenerateContiguous) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(256);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<char> local(128, 'c');
      StridedSpec s;
      s.stride_levels = 0;
      s.count = {128};
      put_strided(local.data(), bases[1], s, 1);
      std::vector<char> back(128, 0);
      get_strided(bases[1], back.data(), s, 1);
      EXPECT_EQ(back, local);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciStridedTest, SingleByteColumns) {
  // Pathological NWChem-like case: 1-byte segments (transposed access).
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(64 * 16);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<char> col(64);
      std::iota(col.begin(), col.end(), 0);
      StridedSpec s;
      s.stride_levels = 1;
      s.count = {1, 64};
      s.src_strides = {1};
      s.dst_strides = {16};  // one byte per remote row
      put_strided(col.data(), bases[1], s, 1);
      std::vector<char> back(64, -1);
      StridedSpec r;
      r.stride_levels = 1;
      r.count = {1, 64};
      r.src_strides = {16};
      r.dst_strides = {1};
      get_strided(bases[1], back.data(), r, 1);
      EXPECT_EQ(back, col);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciStridedTest, GlobalLocalSideIsStaged) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> a = malloc_world(512);
    std::vector<void*> b = malloc_world(512);
    auto* mine_a = static_cast<char*>(
        a[static_cast<std::size_t>(mpisim::rank())]);
    for (int i = 0; i < 512; ++i) mine_a[i] = static_cast<char>(i % 101);
    barrier();
    if (mpisim::rank() == 0) {
      StridedSpec s;
      s.stride_levels = 1;
      s.count = {16, 8};
      s.src_strides = {32};
      s.dst_strides = {64};
      put_strided(mine_a, b[1], s, 1);
      fence(1);
    }
    barrier();
    if (mpisim::rank() == 1) {
      const char* rb = static_cast<const char*>(b[1]);
      for (std::size_t row = 0; row < 8; ++row)
        for (std::size_t c = 0; c < 16; ++c)
          EXPECT_EQ(rb[row * 64 + c], static_cast<char>((row * 32 + c) % 101));
    }
    barrier();
    free(b[static_cast<std::size_t>(mpisim::rank())]);
    free(a[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciStridedTest, AllMethodsProduceIdenticalResults) {
  // Cross-check: run the same transfer and compare against a reference
  // computed locally.
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    const std::size_t rows = 16, pitch = 96, seg = 24;
    std::vector<void*> bases = malloc_world(rows * pitch);
    // Zero the target slice: the reference image assumes the gap bytes
    // between segments are zero, which uninitialized global memory is not.
    if (mpisim::rank() == 1)
      std::memset(bases[1], 0, rows * pitch);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<char> local(rows * seg);
      for (std::size_t i = 0; i < local.size(); ++i)
        local[i] = static_cast<char>((i * 13) % 127);
      StridedSpec s;
      s.stride_levels = 1;
      s.count = {seg, rows};
      s.src_strides = {seg};
      s.dst_strides = {pitch};
      put_strided(local.data(), bases[1], s, 1);

      std::vector<char> expect(rows * pitch, 0);
      for (std::size_t r = 0; r < rows; ++r)
        std::memcpy(expect.data() + r * pitch, local.data() + r * seg, seg);

      std::vector<char> actual(rows * pitch, 0);
      get(bases[1], actual.data(), rows * pitch, 1);
      EXPECT_EQ(actual, expect);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Methods, ArmciStridedTest,
    ::testing::Values(
        StridedCase{Backend::mpi, StridedMethod::direct},
        StridedCase{Backend::mpi, StridedMethod::iov_direct},
        StridedCase{Backend::mpi, StridedMethod::iov_batched},
        StridedCase{Backend::mpi, StridedMethod::iov_conservative},
        StridedCase{Backend::native, StridedMethod::direct},
        StridedCase{Backend::mpi3, StridedMethod::direct}),
    strided_case_name);

TEST(ArmciStridedValidationTest, MalformedSpecThrows) {
  EXPECT_THROW(mpisim::run(2, Platform::ideal,
                           [] {
                             init({});
                             std::vector<void*> bases = malloc_world(256);
                             barrier();
                             StridedSpec s;
                             s.stride_levels = 1;
                             s.count = {64};  // missing count[1]
                             s.src_strides = {64};
                             s.dst_strides = {64};
                             char buf[64];
                             put_strided(buf, bases[1], s, 1);
                           }),
               mpisim::MpiError);
}

}  // namespace
}  // namespace armci
