// Tests for the nonblocking deferred-op aggregation engine (nb.hpp) and the
// derived-datatype cache (dtype_cache.hpp): epoch coalescing, conflict-forced
// flushes, location-consistency ordering under deferral, wait-ticket
// granularity, completion points, and the eager fallbacks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <random>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace armci {
namespace {

using mpisim::Platform;

char* slice(std::vector<void*>& bases, int r, std::size_t off = 0) {
  return static_cast<char*>(bases[static_cast<std::size_t>(r)]) + off;
}

/// Sum of exclusive-lock epochs this rank has opened, over every window.
/// WinStats are only recorded when tracing is enabled (Options::trace).
std::uint64_t exclusive_lock_total() {
  std::uint64_t n = 0;
  for (const auto& [id, ws] : mpisim::tracer().win_stats())
    n += ws.exclusive_locks;
  return n;
}

void free_mine(std::vector<void*>& bases) {
  free(bases[static_cast<std::size_t>(mpisim::rank())]);
}

// ---------------------------------------------------------------------------
// Epoch coalescing (the tentpole claim)
// ---------------------------------------------------------------------------

TEST(ArmciNbTest, CoalescesQueueIntoOneEpoch) {
  mpisim::run(2, Platform::ideal, [] {
    Options o;
    o.trace = true;  // WinStats (lock counters) record only under tracing
    init(o);
    constexpr std::size_t kSlot = 64, kDepth = 8;
    std::vector<void*> bases = malloc_world(kSlot * kDepth);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<std::uint8_t> src(kSlot * kDepth);
      for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 7 + 1);

      const std::uint64_t locks0 = exclusive_lock_total();
      for (std::size_t i = 0; i < kDepth; ++i)
        put(src.data() + i * kSlot, slice(bases, 1, i * kSlot), kSlot, 1);
      const std::uint64_t blocking = exclusive_lock_total() - locks0;
      EXPECT_EQ(blocking, kDepth);  // one exclusive epoch per blocking put

      reset_stats();
      const std::uint64_t locks1 = exclusive_lock_total();
      std::vector<Request> reqs(kDepth);
      for (std::size_t i = 0; i < kDepth; ++i)
        reqs[i] = nb_put(src.data() + i * kSlot, slice(bases, 1, i * kSlot),
                         kSlot, 1);
      EXPECT_EQ(exclusive_lock_total(), locks1);  // nothing issued yet
      for (const Request& r : reqs) EXPECT_FALSE(r.test());
      wait_all();
      const std::uint64_t coalesced = exclusive_lock_total() - locks1;
      EXPECT_EQ(coalesced, 1u);  // the whole queue in a single epoch
      EXPECT_GE(blocking, 4 * coalesced);
      for (const Request& r : reqs) EXPECT_TRUE(r.test());
      EXPECT_EQ(stats().nb_ops, kDepth);
      EXPECT_EQ(stats().nb_deferred, kDepth);
      EXPECT_EQ(stats().nb_eager, 0u);
      EXPECT_EQ(stats().nb_conflict_flushes, 0u);
      EXPECT_EQ(stats().flushed_queues, 1u);
      EXPECT_EQ(stats().coalesced_epochs, 1u);

      std::vector<std::uint8_t> back(kSlot * kDepth, 0);
      get(bases[1], back.data(), back.size(), 1);
      EXPECT_EQ(back, src);
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

// ---------------------------------------------------------------------------
// Location consistency under deferral
// ---------------------------------------------------------------------------

TEST(ArmciNbTest, ConflictingGetForcesQueueFlush) {
  mpisim::run(2, Platform::ideal, [] {
    init();
    std::vector<void*> bases = malloc_world(128);
    barrier();
    if (mpisim::rank() == 0) {
      reset_stats();
      const std::int64_t v = 0x1122334455667788;
      nb_put(&v, bases[1], sizeof v, 1);
      std::int64_t back = -1;
      // Overlaps the queued put's remote range: the queue must flush before
      // the get enqueues, so the get observes the put (RAW ordering).
      Request g = nb_get(bases[1], &back, sizeof back, 1);
      EXPECT_EQ(stats().nb_conflict_flushes, 1u);
      wait(g);
      EXPECT_EQ(back, v);
      EXPECT_EQ(stats().flushed_queues, 2u);
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

TEST(ArmciNbTest, BlockingGetSeesDeferredPut) {
  mpisim::run(2, Platform::ideal, [] {
    init();
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      reset_stats();
      const std::int64_t v = 424242;
      Request r = nb_put(&v, bases[1], sizeof v, 1);
      EXPECT_FALSE(r.test());
      // A blocking op to the same target is a completion point: program
      // order to one process must hold without an explicit wait.
      std::int64_t back = 0;
      get(bases[1], &back, sizeof back, 1);
      EXPECT_EQ(back, v);
      EXPECT_TRUE(r.test());
      EXPECT_EQ(stats().flushed_queues, 1u);
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

TEST(ArmciNbTest, OverlappingPutsKeepProgramOrder) {
  mpisim::run(2, Platform::ideal, [] {
    init();
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      reset_stats();
      const std::int64_t v1 = 111, v2 = 222;
      nb_put(&v1, bases[1], sizeof v1, 1);
      nb_put(&v2, bases[1], sizeof v2, 1);  // WAW: forces the first to issue
      EXPECT_EQ(stats().nb_conflict_flushes, 1u);
      wait_all();
      std::int64_t back = 0;
      get(bases[1], &back, sizeof back, 1);
      EXPECT_EQ(back, v2);
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

TEST(ArmciNbTest, SameTypeAccumulatesCoalesceWithoutConflict) {
  mpisim::run(2, Platform::ideal, [] {
    init();
    std::vector<void*> bases = malloc_world(64);
    if (mpisim::rank() == 1) {
      access_begin(bases[1]);
      std::memset(bases[1], 0, 64);
      access_end(bases[1]);
    }
    barrier();
    if (mpisim::rank() == 0) {
      reset_stats();
      const std::int64_t one = 1;
      const std::int64_t inc = 5;
      // Same-operator accumulates to one location may share an epoch (MPI
      // permits overlapping same-op accumulates), so no conflict flush.
      for (int i = 0; i < 4; ++i)
        nb_acc(AccType::int64, &one, &inc, bases[1], sizeof inc, 1);
      EXPECT_EQ(stats().nb_conflict_flushes, 0u);
      wait_all();
      EXPECT_EQ(stats().flushed_queues, 1u);
      EXPECT_EQ(stats().coalesced_epochs, 1u);
      std::int64_t back = 0;
      get(bases[1], &back, sizeof back, 1);
      EXPECT_EQ(back, 20);
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

// ---------------------------------------------------------------------------
// Wait-ticket granularity and completion points
// ---------------------------------------------------------------------------

TEST(ArmciNbTest, WaitCompletesOnlyTheCoveredQueue) {
  mpisim::run(3, Platform::ideal, [] {
    init();
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      reset_stats();
      const std::int64_t a = 101, b = 202;
      Request r1 = nb_put(&a, bases[1], sizeof a, 1);
      Request r2 = nb_put(&b, bases[2], sizeof b, 2);
      EXPECT_FALSE(r1.test());
      EXPECT_FALSE(r2.test());
      wait(r1);
      EXPECT_TRUE(r1.test());
      EXPECT_FALSE(r2.test());  // the queue to rank 2 stays deferred
      EXPECT_EQ(stats().flushed_queues, 1u);
      wait(r2);
      EXPECT_TRUE(r2.test());
      EXPECT_EQ(stats().flushed_queues, 2u);
    }
    barrier();
    if (mpisim::rank() != 0) {
      access_begin(bases[static_cast<std::size_t>(mpisim::rank())]);
      std::int64_t got = 0;
      std::memcpy(&got, bases[static_cast<std::size_t>(mpisim::rank())],
                  sizeof got);
      EXPECT_EQ(got, mpisim::rank() == 1 ? 101 : 202);
      access_end(bases[static_cast<std::size_t>(mpisim::rank())]);
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

TEST(ArmciNbTest, WaitProcValidatesTheRank) {
  mpisim::run(2, Platform::ideal, [] {
    init();
    if (mpisim::rank() == 0) {
      try {
        wait_proc(-1);
        ADD_FAILURE() << "wait_proc(-1) did not throw";
      } catch (const mpisim::MpiError& e) {
        EXPECT_EQ(e.code(), mpisim::Errc::rank_out_of_range);
      }
      try {
        wait_proc(mpisim::nranks());
        ADD_FAILURE() << "wait_proc(nranks) did not throw";
      } catch (const mpisim::MpiError& e) {
        EXPECT_EQ(e.code(), mpisim::Errc::rank_out_of_range);
      }
      wait_proc(1);  // in range with nothing queued: a no-op
    }
    finalize();
  });
}

TEST(ArmciNbTest, FenceAndAccessBeginAreCompletionPoints) {
  mpisim::run(2, Platform::ideal, [] {
    init();
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      const std::int64_t v = 7;
      Request r = nb_put(&v, bases[1], sizeof v, 1);
      EXPECT_FALSE(r.test());
      fence(1);  // ARMCI_Fence completes queued ops to the target
      EXPECT_TRUE(r.test());

      Request r2 = nb_put(&v, bases[1], sizeof v, 1);
      EXPECT_FALSE(r2.test());
      // Direct local access to the same allocation flushes its queues, so
      // the self-epoch can never deadlock against our own deferred ops.
      access_begin(bases[0]);
      EXPECT_TRUE(r2.test());
      access_end(bases[0]);
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

// ---------------------------------------------------------------------------
// Eager fallbacks
// ---------------------------------------------------------------------------

TEST(ArmciNbTest, SelfTargetsAndScaledAccumulatesGoEager) {
  mpisim::run(2, Platform::ideal, [] {
    init();
    std::vector<void*> bases = malloc_world(64);
    if (mpisim::rank() == 1) {
      access_begin(bases[1]);
      std::memset(bases[1], 0, 64);
      access_end(bases[1]);
    }
    barrier();
    if (mpisim::rank() == 0) {
      reset_stats();
      const std::int64_t v = 5;
      Request r = nb_put(&v, bases[0], sizeof v, 0);  // self target
      EXPECT_TRUE(r.test());
      EXPECT_EQ(stats().nb_eager, 1u);

      const std::int64_t scale = 3, inc = 2;
      Request r2 =
          nb_acc(AccType::int64, &scale, &inc, bases[1], sizeof inc, 1);
      EXPECT_TRUE(r2.test());  // non-identity scale: eager
      EXPECT_EQ(stats().nb_eager, 2u);

      const std::int64_t one = 1;
      Request r3 = nb_acc(AccType::int64, &one, &inc, bases[1], sizeof inc, 1);
      EXPECT_FALSE(r3.test());  // identity scale defers
      EXPECT_EQ(stats().nb_deferred, 1u);
      wait_all();
      std::int64_t back = 0;
      get(bases[1], &back, sizeof back, 1);
      EXPECT_EQ(back, 3 * 2 + 2);
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

TEST(ArmciNbTest, NativeBackendExecutesEagerly) {
  mpisim::run(2, Platform::ideal, [] {
    Options o;
    o.backend = Backend::native;
    init(o);
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      reset_stats();
      const std::int64_t v = 7;
      Request r = nb_put(&v, bases[1], sizeof v, 1);
      EXPECT_TRUE(r.test());
      EXPECT_EQ(stats().nb_ops, 1u);
      EXPECT_EQ(stats().nb_eager, 1u);
      EXPECT_EQ(stats().nb_deferred, 0u);
      fence(1);  // native put needs fence for remote completion
      std::int64_t back = 0;
      get(bases[1], &back, sizeof back, 1);
      EXPECT_EQ(back, v);
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

TEST(ArmciNbTest, AggregationOptionOffGoesEager) {
  mpisim::run(2, Platform::ideal, [] {
    Options o;
    o.nb_aggregation = false;
    init(o);
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      reset_stats();
      const std::int64_t v = 99;
      Request r = nb_put(&v, bases[1], sizeof v, 1);
      EXPECT_TRUE(r.test());
      EXPECT_EQ(stats().nb_eager, 1u);
      EXPECT_EQ(stats().nb_deferred, 0u);
      std::int64_t back = 0;
      get(bases[1], &back, sizeof back, 1);
      EXPECT_EQ(back, v);  // per-op epochs: already remotely complete
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

// ---------------------------------------------------------------------------
// Strided and IOV deferral
// ---------------------------------------------------------------------------

TEST(ArmciNbTest, StridedOpsDeferAndKeepOrder) {
  mpisim::run(2, Platform::ideal, [] {
    init();  // StridedMethod::direct (default) is the deferrable method
    constexpr std::size_t kSeg = 32, kN = 8, kPitch = 64;
    std::vector<void*> bases = malloc_world(kPitch * kN);
    barrier();
    if (mpisim::rank() == 0) {
      reset_stats();
      std::vector<std::uint8_t> src(kSeg * kN), back(kSeg * kN, 0);
      for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 13 + 5);

      StridedSpec pspec;
      pspec.stride_levels = 1;
      pspec.count = {kSeg, kN};
      pspec.src_strides = {kSeg};
      pspec.dst_strides = {kPitch};
      Request rp = nb_put_strided(src.data(), bases[1], pspec, 1);
      EXPECT_FALSE(rp.test());
      EXPECT_EQ(stats().nb_deferred, 1u);

      StridedSpec gspec = pspec;
      gspec.src_strides = {kPitch};
      gspec.dst_strides = {kSeg};
      // Overlapping remote range: the queued put must flush first (RAW).
      Request rg = nb_get_strided(bases[1], back.data(), gspec, 1);
      EXPECT_EQ(stats().nb_conflict_flushes, 1u);
      wait(rg);
      EXPECT_EQ(back, src);
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

TEST(ArmciNbTest, InterleavedLocalSegmentsAcrossTargetsStayDeferred) {
  mpisim::run(3, Platform::ideal, [] {
    init();
    constexpr std::size_t kSeg = 16, kN = 8;
    std::vector<void*> bases = malloc_world(kSeg * kN);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<std::uint8_t> s1(kSeg * kN), s2(kSeg * kN);
      for (std::size_t i = 0; i < s1.size(); ++i) {
        s1[i] = static_cast<std::uint8_t>(i * 3 + 1);
        s2[i] = static_cast<std::uint8_t>(i * 5 + 2);
      }
      put(s1.data(), bases[1], s1.size(), 1);
      put(s2.data(), bases[2], s2.size(), 2);

      // Two deferred gets from different targets interleave their local
      // segments in one buffer: target 1 fills the even kSeg-slots, target
      // 2 the odd ones. The bounding boxes overlap almost entirely, but
      // the per-segment local hazard tracking must see the footprints are
      // disjoint and keep both deferred -- no spurious conflict flush.
      reset_stats();
      std::vector<std::uint8_t> back(2 * kSeg * kN, 0);
      StridedSpec spec;
      spec.stride_levels = 1;
      spec.count = {kSeg, kN};
      spec.src_strides = {kSeg};
      spec.dst_strides = {2 * kSeg};
      Request r1 = nb_get_strided(bases[1], back.data(), spec, 1);
      Request r2 = nb_get_strided(bases[2], back.data() + kSeg, spec, 2);
      EXPECT_EQ(stats().nb_deferred, 2u);
      EXPECT_EQ(stats().nb_conflict_flushes, 0u);
      EXPECT_FALSE(r1.test());
      EXPECT_FALSE(r2.test());
      wait_all();
      for (std::size_t i = 0; i < kN; ++i) {
        for (std::size_t b = 0; b < kSeg; ++b) {
          EXPECT_EQ(back[(2 * i) * kSeg + b], s1[i * kSeg + b]);
          EXPECT_EQ(back[(2 * i + 1) * kSeg + b], s2[i * kSeg + b]);
        }
      }
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

TEST(ArmciNbTest, IovOpsDeferAndComplete) {
  mpisim::run(2, Platform::ideal, [] {
    init();
    constexpr std::size_t kSeg = 16, kN = 6, kPitch = 48;
    std::vector<void*> bases = malloc_world(kPitch * kN);
    barrier();
    if (mpisim::rank() == 0) {
      reset_stats();
      std::vector<std::uint8_t> src(kSeg * kN), back(kSeg * kN, 0);
      for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i + 3);

      Giov pv;
      pv.bytes = kSeg;
      for (std::size_t i = 0; i < kN; ++i) {
        pv.src.push_back(src.data() + i * kSeg);
        pv.dst.push_back(slice(bases, 1, i * kPitch));
      }
      Request rp = nb_put_iov({&pv, 1}, 1);
      EXPECT_FALSE(rp.test());
      EXPECT_EQ(stats().nb_deferred, 1u);
      wait(rp);
      EXPECT_TRUE(rp.test());

      Giov gv;
      gv.bytes = kSeg;
      for (std::size_t i = 0; i < kN; ++i) {
        gv.src.push_back(slice(bases, 1, i * kPitch));
        gv.dst.push_back(back.data() + i * kSeg);
      }
      Request rg = nb_get_iov({&gv, 1}, 1);
      wait(rg);
      EXPECT_EQ(back, src);
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

// ---------------------------------------------------------------------------
// MPI-3 backend: flush-batched queues under the standing lock_all
// ---------------------------------------------------------------------------

TEST(ArmciNbTest, Mpi3BackendCoalescesAndCompletes) {
  mpisim::run(2, Platform::ideal, [] {
    Options o;
    o.backend = Backend::mpi3;
    init(o);
    constexpr std::size_t kSlot = 64, kDepth = 8;
    std::vector<void*> bases = malloc_world(kSlot * kDepth);
    barrier();
    if (mpisim::rank() == 0) {
      reset_stats();
      std::vector<std::uint8_t> src(kSlot * kDepth), back(kSlot * kDepth, 0);
      for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 11 + 2);
      for (std::size_t i = 0; i < kDepth; ++i)
        nb_put(src.data() + i * kSlot, slice(bases, 1, i * kSlot), kSlot, 1);
      EXPECT_EQ(stats().nb_deferred, kDepth);
      wait_all();
      EXPECT_EQ(stats().flushed_queues, 1u);
      EXPECT_EQ(stats().coalesced_epochs, 1u);

      Request rg = nb_get(bases[1], back.data(), back.size(), 1);
      EXPECT_FALSE(rg.test());
      wait(rg);
      EXPECT_EQ(back, src);
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

// ---------------------------------------------------------------------------
// Derived-datatype cache
// ---------------------------------------------------------------------------

TEST(ArmciNbTest, DatatypeCacheHitsOnRepeatedShapes) {
  mpisim::run(2, Platform::ideal, [] {
    init();  // direct strided method builds datatypes through the cache
    constexpr std::size_t kSeg = 32, kN = 8, kPitch = 64;
    std::vector<void*> bases = malloc_world(kPitch * kN);
    barrier();
    if (mpisim::rank() == 0) {
      reset_stats();
      std::vector<std::uint8_t> src(kSeg * kN), back(kSeg * kN, 0);
      for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 5 + 1);
      StridedSpec spec;
      spec.stride_levels = 1;
      spec.count = {kSeg, kN};
      spec.src_strides = {kSeg};
      spec.dst_strides = {kPitch};

      put_strided(src.data(), bases[1], spec, 1);
      const std::uint64_t misses0 = stats().dt_cache_misses;
      EXPECT_GT(misses0, 0u);  // first shape: cold
      EXPECT_EQ(stats().dt_cache_hits, 0u);

      for (int r = 0; r < 4; ++r) put_strided(src.data(), bases[1], spec, 1);
      EXPECT_GT(stats().dt_cache_hits, 0u);
      EXPECT_EQ(stats().dt_cache_misses, misses0);  // no new shapes built

      StridedSpec gspec = spec;
      gspec.src_strides = {kPitch};
      gspec.dst_strides = {kSeg};
      get_strided(bases[1], back.data(), gspec, 1);
      EXPECT_EQ(back, src);  // cached-type transfers move the same bytes
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

TEST(ArmciNbTest, DatatypeCacheEvictsAtCapacityOne) {
  mpisim::run(2, Platform::ideal, [] {
    Options o;
    o.dt_cache_capacity = 1;
    init(o);
    constexpr std::size_t kSeg = 32, kN = 4, kPitch = 64;
    std::vector<void*> bases = malloc_world(kPitch * kN);
    barrier();
    if (mpisim::rank() == 0) {
      reset_stats();
      std::vector<std::uint8_t> src(kSeg * kN, 9);
      StridedSpec spec;
      spec.stride_levels = 1;
      spec.count = {kSeg, kN};
      spec.src_strides = {kSeg};
      spec.dst_strides = {kPitch};
      // Each op needs two distinct shapes (packed local, pitched remote), so
      // a single-entry cache thrashes: every lookup evicts the other shape.
      for (int r = 0; r < 3; ++r) put_strided(src.data(), bases[1], spec, 1);
      EXPECT_EQ(stats().dt_cache_hits, 0u);
      EXPECT_EQ(stats().dt_cache_misses, 6u);
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

// ---------------------------------------------------------------------------
// Randomized location-consistency property test
// ---------------------------------------------------------------------------

// Rank 0 issues a random mix of deferred puts/accumulates/gets and blocking
// gets against rank 1's slice while mirroring every op on a local model in
// program order. Location consistency requires each get -- deferred or
// blocking -- to observe exactly the mirror's state at its issue point.
TEST(ArmciNbTest, RandomizedOpsMatchSequentialMirror) {
  mpisim::run(2, Platform::ideal, [] {
    init();
    constexpr std::size_t kElems = 256;
    std::vector<void*> bases = malloc_world(kElems * sizeof(std::int64_t));
    if (mpisim::rank() == 1) {
      access_begin(bases[1]);
      std::memset(bases[1], 0, kElems * sizeof(std::int64_t));
      access_end(bases[1]);
    }
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<std::int64_t> mirror(kElems, 0);
      std::mt19937_64 rng(20260805);
      // Source buffers stay alive (and untouched) until their op completes.
      std::deque<std::vector<std::int64_t>> srcs;
      struct PendingGet {
        std::vector<std::int64_t> buf;
        std::vector<std::int64_t> expect;
        Request req;
      };
      std::deque<PendingGet> gets;

      for (int i = 0; i < 300; ++i) {
        const std::size_t lo = rng() % kElems;
        const std::size_t n =
            1 + rng() % std::min<std::size_t>(kElems - lo, 16);
        char* remote = slice(bases, 1, lo * sizeof(std::int64_t));
        switch (rng() % 4) {
          case 0: {  // deferred put
            auto& s = srcs.emplace_back(n);
            for (auto& x : s) x = static_cast<std::int64_t>(rng() % 100000);
            nb_put(s.data(), remote, n * sizeof(std::int64_t), 1);
            std::copy(s.begin(), s.end(),
                      mirror.begin() + static_cast<std::ptrdiff_t>(lo));
            break;
          }
          case 1: {  // deferred identity-scale accumulate
            auto& s = srcs.emplace_back(n);
            for (auto& x : s) x = static_cast<std::int64_t>(rng() % 1000);
            const std::int64_t one = 1;
            nb_acc(AccType::int64, &one, s.data(), remote,
                   n * sizeof(std::int64_t), 1);
            for (std::size_t j = 0; j < n; ++j) mirror[lo + j] += s[j];
            break;
          }
          case 2: {  // deferred get: must see the mirror at its issue point
            gets.emplace_back();
            PendingGet& g = gets.back();
            g.buf.assign(n, -1);
            g.expect.assign(mirror.begin() + static_cast<std::ptrdiff_t>(lo),
                            mirror.begin() +
                                static_cast<std::ptrdiff_t>(lo + n));
            g.req = nb_get(remote, g.buf.data(), n * sizeof(std::int64_t), 1);
            break;
          }
          default: {  // blocking get cross-check
            std::vector<std::int64_t> b(n, -1);
            get(remote, b.data(), n * sizeof(std::int64_t), 1);
            for (std::size_t j = 0; j < n; ++j)
              ASSERT_EQ(b[j], mirror[lo + j]) << "op " << i << " elem " << j;
            break;
          }
        }
      }
      wait_all();
      for (std::size_t k = 0; k < gets.size(); ++k) {
        EXPECT_TRUE(gets[k].req.test());
        EXPECT_EQ(gets[k].buf, gets[k].expect) << "deferred get " << k;
      }
      std::vector<std::int64_t> all(kElems, -1);
      get(bases[1], all.data(), kElems * sizeof(std::int64_t), 1);
      EXPECT_EQ(all, mirror);
    }
    barrier();
    free_mine(bases);
    finalize();
  });
}

}  // namespace
}  // namespace armci
