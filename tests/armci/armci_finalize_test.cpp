// Lifecycle robustness tests: finalize() must be idempotent, callable
// before init(), safe to repeat, safe after an aborted run (releasing local
// state without collective rendezvous), and must not block re-initialization.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {
namespace {

using mpisim::Platform;

TEST(ArmciFinalizeTest, FinalizeBeforeInitIsANoOp) {
  mpisim::run(1, Platform::ideal, [] {
    EXPECT_FALSE(initialized());
    EXPECT_NO_THROW(finalize());
    EXPECT_FALSE(initialized());
  });
}

TEST(ArmciFinalizeTest, DoubleFinalizeIsANoOp) {
  mpisim::run(2, Platform::ideal, [] {
    init({});
    EXPECT_TRUE(initialized());
    finalize();
    EXPECT_FALSE(initialized());
    EXPECT_NO_THROW(finalize());
  });
}

TEST(ArmciFinalizeTest, FinalizeFreesRemainingAllocationsAndMutexes) {
  mpisim::run(2, Platform::ideal, [] {
    init({});
    std::vector<void*> bases = malloc_world(64);
    create_mutexes(1);
    barrier();
    // Neither the allocation nor the mutex set is freed explicitly:
    // finalize() must reclaim both (ASan would flag a leak).
    finalize();
    EXPECT_FALSE(initialized());
  });
}

TEST(ArmciFinalizeTest, ReinitAfterFinalizeWorks) {
  mpisim::run(2, Platform::ideal, [] {
    for (int cycle = 0; cycle < 2; ++cycle) {
      init({});
      std::vector<void*> bases = malloc_world(sizeof(std::int64_t));
      barrier();
      if (mpisim::rank() == 0) {
        const std::int64_t v = 100 + cycle;
        put(&v, bases[1], sizeof v, 1);
        std::int64_t back = 0;
        get(bases[1], &back, sizeof back, 1);
        EXPECT_EQ(back, 100 + cycle);
      }
      barrier();
      free(bases[static_cast<std::size_t>(mpisim::rank())]);
      finalize();
      EXPECT_FALSE(initialized());
    }
  });
}

TEST(ArmciFinalizeTest, FinalizeAfterAbortedRunIsSafe) {
  mpisim::Config cfg;
  cfg.nranks = 3;
  cfg.platform = Platform::infiniband;
  cfg.fault.seed = 7;
  cfg.fault.crashes = {{1, 1000.0}};

  int finalized_after_abort = 0;
  try {
    mpisim::run(cfg, [&] {
      // Everything is inside the try: the crash may fire as early as init()'s
      // own collectives, and the abort-safe finalize path must hold there too.
      try {
        init({});
        std::vector<void*> bases = malloc_world(256);
        for (int round = 0; round < 50; ++round) {
          const std::int64_t v = round;
          put(&v, bases[static_cast<std::size_t>((mpisim::rank() + 1) % 3)],
              sizeof v, (mpisim::rank() + 1) % 3);
          barrier();
        }
      } catch (const mpisim::MpiError& e) {
        // Survivors observe Errc::aborted, which guarantees the failure is
        // already recorded: their finalize() must release local state
        // without attempting collective rendezvous, and stay idempotent.
        // (The victim itself just rethrows; its cleanup hook releases its
        // state.)
        if (e.code() == mpisim::Errc::aborted) {
          finalize();
          EXPECT_FALSE(initialized());
          finalize();
          if (mpisim::rank() == 0) finalized_after_abort = 1;
        }
        throw;
      }
    });
    FAIL() << "expected the run to fail";
  } catch (const mpisim::MpiError& e) {
    EXPECT_EQ(e.code(), mpisim::Errc::crashed);
  }
  EXPECT_EQ(finalized_after_abort, 1);
}

}  // namespace
}  // namespace armci
