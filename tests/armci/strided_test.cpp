// Unit tests for strided-notation machinery: Algorithm 1 iteration, IOV
// materialization, and the backward subarray translation (paper §VI-C).

#include "src/armci/strided.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "src/mpisim/error.hpp"

namespace armci {
namespace {

StridedSpec spec_2d(std::size_t seg_bytes, std::size_t nseg,
                    std::size_t src_stride, std::size_t dst_stride) {
  StridedSpec s;
  s.stride_levels = 1;
  s.count = {seg_bytes, nseg};
  s.src_strides = {src_stride};
  s.dst_strides = {dst_stride};
  return s;
}

TEST(StridedSpecTest, ValidationCatchesBadShapes) {
  StridedSpec s = spec_2d(16, 4, 32, 32);
  EXPECT_NO_THROW(validate_spec(s));
  s.count.clear();
  EXPECT_THROW(validate_spec(s), mpisim::MpiError);

  StridedSpec tight = spec_2d(16, 4, 8, 32);  // src stride < segment size
  EXPECT_THROW(validate_spec(tight), mpisim::MpiError);

  StridedSpec zero = spec_2d(16, 4, 32, 32);
  zero.count[1] = 0;
  EXPECT_THROW(validate_spec(zero), mpisim::MpiError);
}

TEST(StridedSpecTest, TotalsAndSegments) {
  StridedSpec s;
  s.stride_levels = 2;
  s.count = {8, 3, 5};
  s.src_strides = {16, 64};
  s.dst_strides = {32, 128};
  EXPECT_EQ(strided_total_bytes(s), 8u * 3u * 5u);
  EXPECT_EQ(strided_segments(s), 15u);
}

TEST(StridedIterTest, ContiguousDegenerate) {
  StridedSpec s;
  s.stride_levels = 0;
  s.count = {64};
  StridedIter it(s);
  std::size_t so = 1, to = 1;
  ASSERT_TRUE(it.next(so, to));
  EXPECT_EQ(so, 0u);
  EXPECT_EQ(to, 0u);
  EXPECT_FALSE(it.next(so, to));
}

TEST(StridedIterTest, TwoDimensionalOffsets) {
  StridedSpec s = spec_2d(8, 4, 32, 48);
  StridedIter it(s);
  std::size_t so = 0, to = 0;
  for (std::size_t j = 0; j < 4; ++j) {
    ASSERT_TRUE(it.next(so, to));
    EXPECT_EQ(so, j * 32);
    EXPECT_EQ(to, j * 48);
  }
  EXPECT_FALSE(it.next(so, to));
}

TEST(StridedIterTest, ThreeDimensionalCarry) {
  StridedSpec s;
  s.stride_levels = 2;
  s.count = {4, 3, 2};
  s.src_strides = {8, 32};
  s.dst_strides = {16, 64};
  StridedIter it(s);
  std::size_t so = 0, to = 0;
  std::size_t k = 0;
  for (std::size_t o = 0; o < 2; ++o) {
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(it.next(so, to));
      EXPECT_EQ(so, i * 8 + o * 32) << k;
      EXPECT_EQ(to, i * 16 + o * 64) << k;
      ++k;
    }
  }
  EXPECT_FALSE(it.next(so, to));
}

TEST(StridedIterTest, ResetRestarts) {
  StridedSpec s = spec_2d(8, 3, 16, 16);
  StridedIter it(s);
  std::size_t so, to;
  while (it.next(so, to)) {
  }
  it.reset();
  ASSERT_TRUE(it.next(so, to));
  EXPECT_EQ(so, 0u);
}

TEST(StridedToIovTest, MaterializesAllSegments) {
  std::vector<std::uint8_t> src(256), dst(256);
  StridedSpec s = spec_2d(8, 4, 32, 48);
  Giov g = strided_to_iov(src.data(), dst.data(), s);
  EXPECT_EQ(g.bytes, 8u);
  ASSERT_EQ(g.src.size(), 4u);
  ASSERT_EQ(g.dst.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(g.src[j], src.data() + j * 32);
    EXPECT_EQ(g.dst[j], dst.data() + j * 48);
  }
}

TEST(SubarrayTranslationTest, RegularStridesRepresentable) {
  // Patch of a 10x16-byte row-major array: stride[0] = 16.
  StridedSpec s = spec_2d(8, 4, 16, 16);
  SubarrayParams p = strided_to_subarray(s.src_strides, s, 1);
  ASSERT_TRUE(p.representable);
  EXPECT_EQ(p.sizes, (std::vector<std::size_t>{4, 16}));
  EXPECT_EQ(p.subsizes, (std::vector<std::size_t>{4, 8}));
  EXPECT_EQ(p.starts, (std::vector<std::size_t>{0, 0}));
}

TEST(SubarrayTranslationTest, ThreeDimensional) {
  StridedSpec s;
  s.stride_levels = 2;
  s.count = {8, 3, 2};       // 8B x 3 x 2 patch
  s.src_strides = {16, 96};  // rows of 16B, planes of 6 rows
  s.dst_strides = {16, 96};
  SubarrayParams p = strided_to_subarray(s.src_strides, s, 1);
  ASSERT_TRUE(p.representable);
  EXPECT_EQ(p.sizes, (std::vector<std::size_t>{2, 6, 16}));
  EXPECT_EQ(p.subsizes, (std::vector<std::size_t>{2, 3, 8}));
}

// Regression: with stride_levels == 0 the outer size used to be taken from
// count[0] directly -- a BYTE length -- while subsizes[0] is in ELEMENTS.
// For 64 doubles that made the parent dimension 512 "elements", i.e. a
// datatype whose extent is 8x the actual transfer.
TEST(SubarrayTranslationTest, ContiguousDegenerateUsesElementUnits) {
  StridedSpec s;
  s.stride_levels = 0;
  s.count = {512};  // 64 doubles, expressed in bytes per the ARMCI API
  SubarrayParams p = strided_to_subarray(s.src_strides, s, sizeof(double));
  ASSERT_TRUE(p.representable);
  EXPECT_EQ(p.sizes, (std::vector<std::size_t>{64}));
  EXPECT_EQ(p.subsizes, (std::vector<std::size_t>{64}));
  EXPECT_EQ(p.starts, (std::vector<std::size_t>{0}));
}

TEST(SubarrayTranslationTest, IrregularStridesFallBack) {
  StridedSpec s;
  s.stride_levels = 2;
  s.count = {8, 3, 2};
  s.src_strides = {16, 100};  // 100 not a multiple of 16
  s.dst_strides = {16, 100};
  SubarrayParams p = strided_to_subarray(s.src_strides, s, 1);
  EXPECT_FALSE(p.representable);
}

TEST(SubarrayTranslationTest, PatchLargerThanDimFallsBack) {
  StridedSpec s = spec_2d(24, 4, 16, 16);  // count[0] > stride[0]
  // validate_spec would reject this; the translation alone must too.
  SubarrayParams p = strided_to_subarray(s.src_strides, s, 1);
  EXPECT_FALSE(p.representable);
}

// Property: the direct-method datatype (subarray or hvector fallback) has
// exactly the layout Algorithm 1 enumerates.
class StridedTypeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(StridedTypeEquivalenceTest, DatatypeMatchesIteration) {
  auto [seg, nseg, stride] = GetParam();
  StridedSpec s = spec_2d(static_cast<std::size_t>(seg),
                          static_cast<std::size_t>(nseg),
                          static_cast<std::size_t>(stride),
                          static_cast<std::size_t>(stride));
  mpisim::Datatype t =
      make_strided_type(s.src_strides, s, mpisim::BasicType::byte_);
  EXPECT_EQ(t.size(), strided_total_bytes(s));

  std::vector<mpisim::Segment> segs = t.flatten(1);
  StridedIter it(s);
  std::size_t so = 0, to = 0;
  std::size_t k = 0;
  std::size_t covered = 0;
  while (it.next(so, to)) {
    // Segments may have been coalesced; verify [so, so+seg) is covered in
    // order by the flattened type.
    while (covered == segs[k].length) {
      ++k;
      covered = 0;
    }
    EXPECT_EQ(static_cast<std::size_t>(segs[k].offset) + covered, so);
    covered += static_cast<std::size_t>(seg);
  }
  EXPECT_EQ(k, segs.size() - 1);
  EXPECT_EQ(covered, segs.back().length);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StridedTypeEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 8, 16), ::testing::Values(1, 5, 32),
                       ::testing::Values(16, 24, 64)));

TEST(StridedTypeTest, AccumulateElementTypeRequiresAlignment) {
  StridedSpec s = spec_2d(12, 4, 32, 32);  // 12 not a multiple of 8
  EXPECT_THROW(
      make_strided_type(s.src_strides, s, mpisim::BasicType::float64),
      mpisim::MpiError);
}

TEST(StridedTypeTest, DoubleElementLayout) {
  StridedSpec s = spec_2d(16, 4, 64, 64);  // 2 doubles per segment
  mpisim::Datatype t =
      make_strided_type(s.src_strides, s, mpisim::BasicType::float64);
  EXPECT_EQ(t.element_type(), mpisim::BasicType::float64);
  EXPECT_EQ(t.size(), 64u);
  EXPECT_EQ(t.flatten(1).size(), 4u);
}

}  // namespace
}  // namespace armci
