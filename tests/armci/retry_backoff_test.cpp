// Retry backoff schedule tests: the default exponential delay, the
// decorrelated-jitter variant (Options::retry_jitter), and the cumulative
// backoff deadline (Options::retry_deadline_ns) that bounds how long one
// with_retry() scope may keep a caller waiting even when attempts remain.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/armci/retry.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {
namespace {

using mpisim::Errc;
using mpisim::Platform;

// ---------------------------------------------------------------------------
// retry_delay_ns (pure schedule function)
// ---------------------------------------------------------------------------

TEST(RetryBackoffTest, DefaultScheduleIsCappedExponential) {
  Options o;  // retry_backoff_ns = 500, jitter off
  double prev = o.retry_backoff_ns;
  EXPECT_DOUBLE_EQ(retry_delay_ns(o, 0.0, 0, &prev), 500.0);
  EXPECT_DOUBLE_EQ(retry_delay_ns(o, 0.0, 1, &prev), 1000.0);
  EXPECT_DOUBLE_EQ(retry_delay_ns(o, 0.0, 4, &prev), 8000.0);
  // The exponent saturates at 10: attempt 10 and beyond charge the cap.
  EXPECT_DOUBLE_EQ(retry_delay_ns(o, 0.0, 10, &prev), 500.0 * 1024);
  EXPECT_DOUBLE_EQ(retry_delay_ns(o, 0.0, 37, &prev), 500.0 * 1024);
}

TEST(RetryBackoffTest, DecorrelatedJitterStaysInsideItsEnvelope) {
  // Brooker-style decorrelated jitter: each delay is uniform in
  // [base, min(cap, 3 * prev * jitter)], so the whole sequence is bounded
  // below by the base and above by the exponential cap, whatever the
  // uniform draws are.
  Options o;
  o.retry_jitter = 1.0;
  const double base = o.retry_backoff_ns;
  const double cap = std::ldexp(base, 10);
  for (const double u : {0.0, 0.25, 0.75, 0.999}) {
    double prev = base;
    double hi = 3.0 * base;  // envelope for attempt 0
    for (int attempt = 0; attempt < 20; ++attempt) {
      const double d = retry_delay_ns(o, u, attempt, &prev);
      EXPECT_GE(d, base) << "u=" << u << " attempt=" << attempt;
      EXPECT_LE(d, std::min(cap, hi)) << "u=" << u << " attempt=" << attempt;
      EXPECT_DOUBLE_EQ(prev, d);  // the draw seeds the next envelope
      hi = 3.0 * d;
    }
  }
}

TEST(RetryBackoffTest, SmallJitterFactorDegeneratesToTheBase) {
  // When 3 * prev * jitter never exceeds the base, the interval collapses
  // and every delay is exactly the base (no amplification, still bounded).
  Options o;
  o.retry_jitter = 0.1;  // 3 * 500 * 0.1 = 150 < 500
  double prev = o.retry_backoff_ns;
  for (int attempt = 0; attempt < 5; ++attempt)
    EXPECT_DOUBLE_EQ(retry_delay_ns(o, 0.9, attempt, &prev), 500.0);
}

TEST(RetryBackoffTest, TotalBackoffIsTheExponentialSeries) {
  Options o;  // 5 retries at 500 * 2^a
  EXPECT_DOUBLE_EQ(retry_total_backoff_ns(o),
                   500.0 * (1 + 2 + 4 + 8 + 16));
  o.transient_max_retries = 12;  // attempts 0..10 ramp, attempt 11 is capped
  EXPECT_DOUBLE_EQ(retry_total_backoff_ns(o),
                   500.0 * ((1 << 11) - 1) + 500.0 * 1024);
}

// ---------------------------------------------------------------------------
// with_retry integration (deterministic injected transients)
// ---------------------------------------------------------------------------

/// Deterministic schedule: the first consult of the mpi.contig fault site
/// starts a burst of \p fail_count failures; everything else is untouched.
mpisim::Config contig_fault_cfg(int fail_count) {
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = Platform::infiniband;
  cfg.ranks_per_node = 1;  // keep the put on the remote mpi.contig path
  cfg.fault.seed = 11;
  cfg.fault.transient.rate = 1.0;
  cfg.fault.transient.fail_count = fail_count;
  cfg.fault.transient.stall_ns = 50.0;
  cfg.fault.transient.site = "mpi.contig";
  cfg.fault.transient.max_bursts = 1;
  return cfg;
}

TEST(RetryDeadlineTest, DeadlineCutsRetriesShortEvenWithAttemptsLeft) {
  // The first retry would charge 500 ns of backoff; a 100 ns cumulative
  // deadline forbids it, so the transient propagates as exhausted after
  // zero retries despite transient_max_retries = 5.
  mpisim::run(contig_fault_cfg(/*fail_count=*/1), [] {
    Options o;
    o.retry_deadline_ns = 100.0;
    init(o);
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      char buf[64] = {};
      try {
        put(buf, bases[1], sizeof buf, 1);
        ADD_FAILURE() << "the deadline should have surfaced the transient";
      } catch (const mpisim::MpiError& e) {
        EXPECT_EQ(e.code(), Errc::transient) << e.what();
      }
      EXPECT_EQ(stats().transient_faults, 1u);
      EXPECT_EQ(stats().retries, 0u);
      EXPECT_EQ(stats().retry_exhausted, 1u);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST(RetryDeadlineTest, GenerousDeadlineNeverFires) {
  // Three failures cost 500 + 1000 + 2000 ns of backoff; a deadline equal
  // to the full exponential budget never triggers, so the op recovers.
  mpisim::run(contig_fault_cfg(/*fail_count=*/3), [] {
    Options o;
    o.retry_deadline_ns = retry_total_backoff_ns(o);
    init(o);
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      char buf[64] = {};
      put(buf, bases[1], sizeof buf, 1);
      EXPECT_EQ(stats().transient_faults, 3u);
      EXPECT_EQ(stats().retries, 3u);
      EXPECT_EQ(stats().retry_exhausted, 0u);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST(RetryDeadlineTest, JitteredRetriesRecoverAndStayBounded) {
  // With jitter on, the three backoff delays are drawn from the rank's
  // deterministic fault stream; the op still recovers, and the virtual
  // time spent backing off stays inside the decorrelated-jitter envelope
  // (sum of 3 * prev amplifications: at most 500 * (3 + 9 + 27)).
  mpisim::run(contig_fault_cfg(/*fail_count=*/3), [] {
    Options o;
    o.retry_jitter = 1.0;
    init(o);
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      const double t0 = mpisim::clock().now_ns();
      char buf[64] = {};
      put(buf, bases[1], sizeof buf, 1);
      const double elapsed = mpisim::clock().now_ns() - t0;
      EXPECT_EQ(stats().retries, 3u);
      EXPECT_EQ(stats().retry_exhausted, 0u);
      EXPECT_GE(elapsed, 3 * 500.0);  // three delays, each >= the base
      EXPECT_LE(elapsed, 500.0 * (3 + 9 + 27) + 3 * 50.0 + 1e5)
          << "jittered backoff escaped its envelope";
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

}  // namespace
}  // namespace armci
