// Integration tests for the ARMCI core: lifecycle, global memory,
// contiguous ops, staging of global local buffers, fence semantics.
// Parameterized over both backends -- the paper's central claim is that the
// MPI backend provides the same semantics as native ARMCI.

#include "src/armci/armci.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "src/mpisim/runtime.hpp"

namespace armci {
namespace {

using mpisim::Platform;

class ArmciBackendTest : public ::testing::TestWithParam<Backend> {
 protected:
  Options opts() const {
    Options o;
    o.backend = GetParam();
    return o;
  }
};

TEST_P(ArmciBackendTest, InitFinalizeCycle) {
  mpisim::run(4, Platform::ideal, [&] {
    EXPECT_FALSE(initialized());
    init(opts());
    EXPECT_TRUE(initialized());
    EXPECT_EQ(options().backend, GetParam());
    finalize();
    EXPECT_FALSE(initialized());
  });
}

TEST_P(ArmciBackendTest, MallocReturnsBaseVector) {
  mpisim::run(4, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(1024);
    ASSERT_EQ(bases.size(), 4u);
    for (void* p : bases) EXPECT_NE(p, nullptr);
    EXPECT_NE(bases[0], bases[1]);
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciBackendTest, ZeroSizeSliceGetsNull) {
  mpisim::run(3, Platform::ideal, [&] {
    init(opts());
    const std::size_t mine = mpisim::rank() == 1 ? 0 : 256;
    std::vector<void*> bases = malloc_world(mine);
    EXPECT_EQ(bases[1], nullptr);
    EXPECT_NE(bases[0], nullptr);
    // The NULL-slice member participates in the free with nullptr
    // (exercises the leader-election path of §V-B).
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciBackendTest, PutGetRoundTrip) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(64 * sizeof(double));
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<double> src(64);
      std::iota(src.begin(), src.end(), 1.0);
      put(src.data(), bases[1], 64 * sizeof(double), 1);
      fence(1);

      std::vector<double> back(64, 0.0);
      get(bases[1], back.data(), 64 * sizeof(double), 1);
      EXPECT_EQ(back, src);
    }
    barrier();
    if (mpisim::rank() == 1) {
      const double* mine = static_cast<const double*>(
          bases[static_cast<std::size_t>(mpisim::rank())]);
      EXPECT_DOUBLE_EQ(mine[0], 1.0);
      EXPECT_DOUBLE_EQ(mine[63], 64.0);
    }
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciBackendTest, PutAtOffsetWithinSlice) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(256);
    barrier();
    if (mpisim::rank() == 0) {
      const char msg[] = "hello armci";
      put(msg, static_cast<char*>(bases[1]) + 100, sizeof msg, 1);
      char back[sizeof msg] = {};
      get(static_cast<char*>(bases[1]) + 100, back, sizeof msg, 1);
      EXPECT_STREQ(back, "hello armci");
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciBackendTest, AccumulateDoubleWithScale) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(8 * sizeof(double));
    auto* mine = static_cast<double*>(
        bases[static_cast<std::size_t>(mpisim::rank())]);
    for (int i = 0; i < 8; ++i) mine[i] = 100.0;
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<double> src{1, 2, 3, 4, 5, 6, 7, 8};
      const double scale = 2.5;
      acc(AccType::float64, &scale, src.data(), bases[1], 8 * sizeof(double),
          1);
      fence(1);
    }
    barrier();
    if (mpisim::rank() == 1) {
      for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(mine[i], 100.0 + 2.5 * (i + 1));
    }
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciBackendTest, AccumulateIntegerTypes) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(16 * sizeof(std::int64_t));
    auto* mine = static_cast<std::int64_t*>(
        bases[static_cast<std::size_t>(mpisim::rank())]);
    for (int i = 0; i < 16; ++i) mine[i] = 10;
    barrier();
    if (mpisim::rank() == 1) {
      std::vector<std::int64_t> src(16, 7);
      const std::int64_t scale = 3;
      acc(AccType::int64, &scale, src.data(), bases[0],
          16 * sizeof(std::int64_t), 0);
      fence_all();
    }
    barrier();
    if (mpisim::rank() == 0)
      for (int i = 0; i < 16; ++i) EXPECT_EQ(mine[i], 10 + 21);
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciBackendTest, ConcurrentAccumulatesSum) {
  // Many ranks accumulate into rank 0 concurrently: ARMCI guarantees
  // element-wise atomicity of accumulate.
  mpisim::run(8, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(32 * sizeof(double));
    auto* mine = static_cast<double*>(
        bases[static_cast<std::size_t>(mpisim::rank())]);
    std::memset(mine, 0, 32 * sizeof(double));
    barrier();
    std::vector<double> src(32, 1.0);
    const double one = 1.0;
    for (int iter = 0; iter < 10; ++iter)
      acc(AccType::float64, &one, src.data(), bases[0], 32 * sizeof(double),
          0);
    barrier();
    if (mpisim::rank() == 0)
      for (int i = 0; i < 32; ++i) EXPECT_DOUBLE_EQ(mine[i], 80.0);
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciBackendTest, GlobalLocalBufferIsStaged) {
  // §V-E1: use a *global* buffer as the local side of a put/get. The MPI
  // backend must stage it through a temporary to avoid double-locking.
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> a = malloc_world(64);
    std::vector<void*> b = malloc_world(64);
    auto* mine_a =
        static_cast<char*>(a[static_cast<std::size_t>(mpisim::rank())]);
    std::memset(mine_a, 'A' + mpisim::rank(), 64);
    barrier();
    if (mpisim::rank() == 0) {
      // local source = my slice of allocation a (global space)
      put(mine_a, b[1], 64, 1);
      // local dest = my slice of a (global space)
      char before = mine_a[0];
      get(b[1], mine_a, 64, 1);
      EXPECT_EQ(mine_a[0], before);
    }
    barrier();
    if (mpisim::rank() == 1) {
      EXPECT_EQ(static_cast<char*>(b[1])[0], 'A');
    }
    free_group(a[static_cast<std::size_t>(mpisim::rank())],
               PGroup::world());
    free(b[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciBackendTest, SelfCommunication) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(16 * sizeof(double));
    std::vector<double> src{3.5, 4.5};
    put(src.data(), bases[static_cast<std::size_t>(mpisim::rank())],
        2 * sizeof(double), mpisim::rank());
    std::vector<double> back(2, 0.0);
    get(bases[static_cast<std::size_t>(mpisim::rank())], back.data(),
        2 * sizeof(double), mpisim::rank());
    EXPECT_EQ(back, src);
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciBackendTest, MultipleAllocationsResolveIndependently) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<std::vector<void*>> allocs;
    for (int k = 0; k < 5; ++k) allocs.push_back(malloc_world(128));
    barrier();
    if (mpisim::rank() == 0) {
      for (int k = 0; k < 5; ++k) {
        const char v = static_cast<char>('0' + k);
        put(&v, static_cast<char*>(allocs[static_cast<std::size_t>(k)][1]) + k,
            1, 1);
      }
      fence(1);
    }
    barrier();
    if (mpisim::rank() == 1) {
      for (int k = 0; k < 5; ++k)
        EXPECT_EQ(static_cast<char*>(
                      allocs[static_cast<std::size_t>(k)][1])[k],
                  static_cast<char>('0' + k));
    }
    for (int k = 4; k >= 0; --k)
      free(allocs[static_cast<std::size_t>(k)]
                 [static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciBackendTest, NonGlobalAddressThrows) {
  EXPECT_THROW(mpisim::run(2, Platform::ideal,
                           [&] {
                             init(opts());
                             double local = 0.0, remote = 0.0;
                             put(&local, &remote, sizeof remote, 1);
                           }),
               mpisim::MpiError);
}

TEST_P(ArmciBackendTest, OutOfSliceRangeThrows) {
  EXPECT_THROW(
      mpisim::run(2, Platform::ideal,
                  [&] {
                    init(opts());
                    std::vector<void*> bases = malloc_world(64);
                    barrier();
                    char buf[32];
                    // [48, 80) pokes past the 64-byte slice.
                    get(static_cast<char*>(bases[1]) + 48, buf, 32, 1);
                  }),
      mpisim::MpiError);
}

TEST_P(ArmciBackendTest, NonblockingOpsCompleteOnWait) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(8 * sizeof(double));
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<double> src{1, 2, 3, 4};
      Request r = nb_put(src.data(), bases[1], 4 * sizeof(double), 1);
      wait(r);
      EXPECT_TRUE(r.test());
      std::vector<double> dst(4, 0.0);
      Request g = nb_get(bases[1], dst.data(), 4 * sizeof(double), 1);
      wait(g);
      EXPECT_EQ(dst, src);
      wait_proc(1);
      wait_all();
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciBackendTest, LocalAllocIsUsableAsTransferBuffer) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(64);
    auto* buf = static_cast<char*>(malloc_local(64));
    barrier();
    if (mpisim::rank() == 0) {
      std::memset(buf, 'x', 64);
      put(buf, bases[1], 64, 1);
      fence(1);
    }
    barrier();
    if (mpisim::rank() == 1) {
      EXPECT_EQ(static_cast<char*>(bases[1])[63], 'x');
    }
    free_local(buf);
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciBackendTest, MsgSendRecvInterleavesWithOneSided) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(sizeof(double));
    barrier();
    if (mpisim::rank() == 0) {
      const double v = 42.0;
      put(&v, bases[1], sizeof v, 1);
      fence(1);
      const int token = 1;
      msg_send(&token, sizeof token, 1, 99);
    } else {
      int token = 0;
      msg_recv(&token, sizeof token, 0, 99);
      EXPECT_EQ(token, 1);
      // After fence + message, the put must be remotely visible.
      EXPECT_DOUBLE_EQ(*static_cast<double*>(bases[1]), 42.0);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciBackendTest, VirtualTimeAdvancesWithTransfers) {
  mpisim::run(2, Platform::infiniband, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(1 << 20);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<char> src(1 << 20, 'z');
      const double t0 = mpisim::clock().now_ns();
      put(src.data(), bases[1], src.size(), 1);
      EXPECT_GT(mpisim::clock().now_ns(), t0);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, ArmciBackendTest,
                         ::testing::Values(Backend::mpi, Backend::native,
                                           Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::mpi: return "Mpi";
                             case Backend::native: return "Native";
                             case Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

// Backend-specific: ARMCI's location consistency on the MPI backend --
// an origin observes its own ops in issue order.
TEST(ArmciMpiSemanticsTest, LocationConsistencyForOrigin) {
  mpisim::run(2, Platform::ideal, [] {
    Options o;
    o.backend = Backend::mpi;
    init(o);
    std::vector<void*> bases = malloc_world(sizeof(std::int64_t));
    barrier();
    if (mpisim::rank() == 0) {
      for (std::int64_t v = 1; v <= 50; ++v) {
        put(&v, bases[1], sizeof v, 1);
        std::int64_t seen = 0;
        get(bases[1], &seen, sizeof seen, 1);
        EXPECT_EQ(seen, v);  // own ops observed in order
      }
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST(ArmciNativeSemanticsTest, FenceRequiredForRemoteCompletion) {
  // The native backend distinguishes local from remote completion; fence
  // advances virtual time only when ops are pending.
  mpisim::run(2, Platform::infiniband, [] {
    Options o;
    o.backend = Backend::native;
    init(o);
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      char v[8] = {1};
      put(v, bases[1], 8, 1);
      const double t0 = mpisim::clock().now_ns();
      fence(1);
      EXPECT_GT(mpisim::clock().now_ns(), t0);  // round trip charged
      const double t1 = mpisim::clock().now_ns();
      fence(1);  // nothing pending: free
      EXPECT_EQ(mpisim::clock().now_ns(), t1);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

}  // namespace
}  // namespace armci
