// Tests for the cooperative progress engine (Options::progress, nb.hpp
// progress_tick): completion levels, explicit armci::progress() pokes,
// virtual-time ticks from SimClock::advance_compute, test()/on_complete()
// request probing, the overlap gauges, and the MPISIM_PROGRESS override.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/armci/metrics.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace armci {
namespace {

using mpisim::Platform;

/// One rank per node so every transfer takes the deferring remote path
/// (the shared-memory fast path would bypass the nb queues entirely).
mpisim::Config remote_cfg(int nranks,
                          Platform platform = Platform::ideal) {
  mpisim::Config cfg;
  cfg.nranks = nranks;
  cfg.platform = platform;
  cfg.ranks_per_node = 1;
  return cfg;
}

Options engine_opts(Backend backend) {
  Options o;
  o.backend = backend;
  o.progress = true;
  return o;
}

char* slice(std::vector<void*>& bases, int r, std::size_t off = 0) {
  return static_cast<char*>(bases[static_cast<std::size_t>(r)]) + off;
}

void fill_mine(std::vector<void*>& bases, std::size_t bytes,
               std::uint8_t seed) {
  auto* p = static_cast<std::uint8_t*>(
      bases[static_cast<std::size_t>(mpisim::rank())]);
  for (std::size_t i = 0; i < bytes; ++i)
    p[i] = static_cast<std::uint8_t>(seed + i * 13);
}

void expect_pattern(const std::uint8_t* p, std::size_t bytes,
                    std::uint8_t seed) {
  for (std::size_t i = 0; i < bytes; ++i)
    ASSERT_EQ(p[i], static_cast<std::uint8_t>(seed + i * 13)) << "i=" << i;
}

/// Save/clear/restore MPISIM_PROGRESS around a test body, so the suite
/// behaves the same under the CI leg that exports MPISIM_PROGRESS=on.
class ScopedProgressEnv {
 public:
  explicit ScopedProgressEnv(const char* value) {
    const char* old = std::getenv("MPISIM_PROGRESS");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value)
      ::setenv("MPISIM_PROGRESS", value, 1);
    else
      ::unsetenv("MPISIM_PROGRESS");
  }
  ~ScopedProgressEnv() {
    if (had_)
      ::setenv("MPISIM_PROGRESS", saved_.c_str(), 1);
    else
      ::unsetenv("MPISIM_PROGRESS");
  }

 private:
  bool had_ = false;
  std::string saved_;
};

// ---------------------------------------------------------------------------
// Completion levels (source vs operation)
// ---------------------------------------------------------------------------

// On the split-completion mpi3 backend a deferred get becomes
// source-complete at the issue tick (buffers reusable) but
// operation-complete only after the target flush on the next tick.
// on_complete at source level must fire a full tick before operation level.
TEST(ArmciProgressTest, GetSplitsSourceAndOperationCompletionOnMpi3) {
  mpisim::run(remote_cfg(2), [] {
    init(engine_opts(Backend::mpi3));
    constexpr std::size_t kBytes = 256;
    std::vector<void*> bases = malloc_world(kBytes);
    fill_mine(bases, kBytes, 5);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<std::uint8_t> dst(kBytes, 0);
      Request req = nb_get(slice(bases, 1), dst.data(), kBytes, 1);
      EXPECT_FALSE(req.test());  // deferred, nothing issued yet

      // One interval of compute -> exactly one tick: the batch issues.
      mpisim::clock().advance_compute(15'000.0);
      bool src_done = false, op_done = false;
      on_complete(req, Completion::source, [&](std::exception_ptr err) {
        EXPECT_EQ(err, nullptr);
        src_done = true;
      });
      on_complete(req, Completion::operation, [&](std::exception_ptr err) {
        EXPECT_EQ(err, nullptr);
        op_done = true;
      });
      EXPECT_TRUE(src_done);   // satisfied at registration: fired inline
      EXPECT_FALSE(op_done);   // get still in flight at the target
      EXPECT_FALSE(req.test());

      // Next tick completes the target flush and runs the callback.
      mpisim::clock().advance_compute(15'000.0);
      EXPECT_TRUE(op_done);
      EXPECT_TRUE(req.test());
      expect_pattern(dst.data(), kBytes, 5);
      EXPECT_GE(stats().progress_ticks, 2u);
      EXPECT_GE(stats().progress_retires, 1u);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

// Put-only batches need no target flush on mpi3 (flush_queue semantics:
// only gets force one), so a single poke issues AND retires them.
TEST(ArmciProgressTest, PutOnlyBatchRetiresAtIssueOnMpi3) {
  mpisim::run(remote_cfg(2), [] {
    init(engine_opts(Backend::mpi3));
    constexpr std::size_t kBytes = 128;
    std::vector<void*> bases = malloc_world(kBytes);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<std::uint8_t> src(kBytes);
      for (std::size_t i = 0; i < kBytes; ++i)
        src[i] = static_cast<std::uint8_t>(i * 13 + 9);
      Request req = nb_put(src.data(), slice(bases, 1), kBytes, 1);
      EXPECT_FALSE(req.test());
      progress();  // one poke: issue == operation completion for puts
      EXPECT_TRUE(req.test());
      EXPECT_TRUE(test(req, Completion::operation));
      EXPECT_GE(stats().progress_retires, 1u);
    }
    barrier();
    if (mpisim::rank() == 1)
      expect_pattern(static_cast<const std::uint8_t*>(bases[1]), kBytes, 9);
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

// The mpi (MPI-2) backend has no split completion: flush_queue runs the
// whole exclusive epoch, so one poke operation-completes even a get.
TEST(ArmciProgressTest, MpiBackendCompletesGetInOnePoke) {
  mpisim::run(remote_cfg(2), [] {
    init(engine_opts(Backend::mpi));
    constexpr std::size_t kBytes = 256;
    std::vector<void*> bases = malloc_world(kBytes);
    fill_mine(bases, kBytes, 21);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<std::uint8_t> dst(kBytes, 0);
      Request req = nb_get(slice(bases, 1), dst.data(), kBytes, 1);
      EXPECT_FALSE(req.test());
      progress();
      EXPECT_TRUE(req.test());
      expect_pattern(dst.data(), kBytes, 21);
      EXPECT_GE(stats().progress_retires, 1u);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

// ---------------------------------------------------------------------------
// test() polling and merged handles
// ---------------------------------------------------------------------------

// ARMCI_Test-style poll loop: each test() pokes the engine, so the loop
// terminates without any wait()/flush call ever running.
TEST(ArmciProgressTest, TestPollLoopDrivesCompletion) {
  mpisim::run(remote_cfg(2), [] {
    init(engine_opts(Backend::mpi3));
    constexpr std::size_t kBytes = 512;
    std::vector<void*> bases = malloc_world(kBytes);
    fill_mine(bases, kBytes, 33);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<std::uint8_t> dst(kBytes, 0);
      Request req = nb_get(slice(bases, 1), dst.data(), kBytes, 1);
      int polls = 0;
      while (!test(req)) {
        ++polls;
        ASSERT_LT(polls, 64) << "test() never completed the request";
      }
      EXPECT_GE(polls, 1);  // a get takes at least issue + complete
      expect_pattern(dst.data(), kBytes, 33);
      EXPECT_GE(stats().progress_ticks, 2u);
      EXPECT_GE(stats().progress_retires, 1u);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

// A merged multi-owner request holds tickets on several queues; test()
// reports true only once every owner's queue has drained.
TEST(ArmciProgressTest, MergedMultiOwnerRequestCompletes) {
  mpisim::run(remote_cfg(3), [] {
    init(engine_opts(Backend::mpi3));
    constexpr std::size_t kBytes = 128;
    std::vector<void*> bases = malloc_world(kBytes);
    fill_mine(bases, kBytes, static_cast<std::uint8_t>(mpisim::rank() * 40));
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<std::uint8_t> d1(kBytes, 0), d2(kBytes, 0);
      Request req = nb_get(slice(bases, 1), d1.data(), kBytes, 1);
      req.merge(nb_get(slice(bases, 2), d2.data(), kBytes, 2));
      EXPECT_FALSE(req.test());
      int polls = 0;
      while (!test(req)) ASSERT_LT(++polls, 64);
      expect_pattern(d1.data(), kBytes, 40);
      expect_pattern(d2.data(), kBytes, 80);
      EXPECT_GE(stats().progress_retires, 2u);  // one per owner queue
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

// Born-complete handles: an empty Request tests true at every level and
// fires on_complete synchronously -- queues for its tickets need not exist.
TEST(ArmciProgressTest, EmptyRequestIsBornComplete) {
  mpisim::run(remote_cfg(2), [] {
    init(engine_opts(Backend::mpi3));
    Request req;
    EXPECT_TRUE(test(req, Completion::source));
    EXPECT_TRUE(test(req, Completion::operation));
    bool fired = false;
    on_complete(req, [&](std::exception_ptr err) {
      EXPECT_EQ(err, nullptr);
      fired = true;
    });
    EXPECT_TRUE(fired);
    finalize();
  });
}

// A request whose queue already drained through a blocking completion
// point stays testable after the queue state was retired.
TEST(ArmciProgressTest, TestAfterWaitIsTrueWithoutQueues) {
  mpisim::run(remote_cfg(2), [] {
    init(engine_opts(Backend::mpi3));
    constexpr std::size_t kBytes = 64;
    std::vector<void*> bases = malloc_world(kBytes);
    fill_mine(bases, kBytes, 11);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<std::uint8_t> dst(kBytes, 0);
      Request req = nb_get(slice(bases, 1), dst.data(), kBytes, 1);
      wait(req);
      EXPECT_TRUE(test(req, Completion::source));
      EXPECT_TRUE(test(req));
      expect_pattern(dst.data(), kBytes, 11);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

// ---------------------------------------------------------------------------
// Overlap accounting and the metrics export
// ---------------------------------------------------------------------------

// Ticks that fire under modeled compute hide their communication time:
// after an overlapped round the gauges show comm > 0, hidden > 0,
// efficiency in (0, 1], and the armci-metrics-v1 export carries them.
TEST(ArmciProgressTest, OverlapGaugesMeasureHiddenCommunication) {
  mpisim::run(remote_cfg(2, Platform::infiniband), [] {
    Options o = engine_opts(Backend::mpi3);
    o.metrics = true;
    o.trace = true;  // the ticks must land on the trace timeline too
    init(o);
    constexpr std::size_t kBytes = 4096, kDepth = 8;
    std::vector<void*> bases = malloc_world(kBytes * kDepth);
    std::memset(bases[static_cast<std::size_t>(mpisim::rank())], 7,
                kBytes * kDepth);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<std::uint8_t> dst(kBytes * kDepth, 0);
      auto round = [&] {
        Request req;
        for (std::size_t i = 0; i < kDepth; ++i)
          req.merge(nb_get(slice(bases, 1, i * kBytes),
                           dst.data() + i * kBytes, kBytes, 1));
        mpisim::clock().advance_compute(100'000.0);  // 10 tick intervals
        wait(req);
      };
      round();  // warm-up
      reset_stats();
      EXPECT_EQ(stats().overlap_comm_ns, 0.0);  // baseline re-anchored
      round();
      const Stats& s = stats();
      EXPECT_GT(s.progress_ticks, 0u);
      EXPECT_GT(s.overlap_comm_ns, 0.0);
      EXPECT_GT(s.overlap_hidden_ns, 0.0);
      EXPECT_GT(s.overlap_efficiency(), 0.0);
      EXPECT_LE(s.overlap_efficiency(), 1.0);
      const std::string json = metrics_json();
      EXPECT_NE(json.find("\"progress\":{\"enabled\":true"),
                std::string::npos)
          << json;
      EXPECT_NE(json.find("\"overlap_efficiency\":"), std::string::npos);
      bool saw_tick = false, saw_retire = false;
      for (const mpisim::TraceEvent& ev : mpisim::tracer().events()) {
        if (std::string(ev.name) == "progress.tick") saw_tick = true;
        if (std::string(ev.name) == "progress.retire") saw_retire = true;
      }
      EXPECT_TRUE(saw_tick) << "no progress.tick trace events";
      EXPECT_TRUE(saw_retire) << "no progress.retire trace events";
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

// ---------------------------------------------------------------------------
// Enablement: Options::progress default and the MPISIM_PROGRESS override
// ---------------------------------------------------------------------------

// Engine off (the default): compute never ticks, explicit pokes are no-ops,
// and completion still happens entirely inside wait().
TEST(ArmciProgressTest, EngineOffByDefaultNeverTicks) {
  ScopedProgressEnv env(nullptr);  // neutralize a CI-exported MPISIM_PROGRESS
  mpisim::run(remote_cfg(2), [] {
    init(Options{});
    constexpr std::size_t kBytes = 128;
    std::vector<void*> bases = malloc_world(kBytes);
    fill_mine(bases, kBytes, 17);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<std::uint8_t> dst(kBytes, 0);
      Request req = nb_get(slice(bases, 1), dst.data(), kBytes, 1);
      mpisim::clock().advance_compute(100'000.0);
      progress();  // no-op with the engine off
      EXPECT_FALSE(req.test());
      wait(req);
      expect_pattern(dst.data(), kBytes, 17);
      EXPECT_EQ(stats().progress_ticks, 0u);
      EXPECT_EQ(stats().progress_retires, 0u);
      EXPECT_EQ(stats().overlap_comm_ns, 0.0);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

// MPISIM_PROGRESS=off wins over Options::progress=true (same precedence
// convention as MPISIM_RMA_CHECK), and =on enables it with default opts.
TEST(ArmciProgressTest, EnvOverridesOptions) {
  {
    ScopedProgressEnv env("off");
    mpisim::run(remote_cfg(2), [] {
      init(engine_opts(Backend::mpi3));
      std::vector<void*> bases = malloc_world(64);
      barrier();
      if (mpisim::rank() == 0) {
        char src[64] = {1};
        Request req = nb_put(src, slice(bases, 1), sizeof src, 1);
        progress();
        EXPECT_FALSE(req.test());  // engine forced off: poke did nothing
        wait(req);
      }
      barrier();
      EXPECT_EQ(stats().progress_ticks, 0u);
      free(bases[static_cast<std::size_t>(mpisim::rank())]);
      finalize();
    });
  }
  {
    ScopedProgressEnv env("on");
    mpisim::run(remote_cfg(2), [] {
      init(Options{});  // progress defaults false; env forces it on
      std::vector<void*> bases = malloc_world(64);
      barrier();
      if (mpisim::rank() == 0) {
        char src[64] = {2};
        Request req = nb_put(src, slice(bases, 1), sizeof src, 1);
        progress();
        EXPECT_TRUE(req.test());
        EXPECT_GE(stats().progress_ticks, 1u);
      }
      barrier();
      free(bases[static_cast<std::size_t>(mpisim::rank())]);
      finalize();
    });
  }
}

}  // namespace
}  // namespace armci
