// Integration tests for ARMCI mutexes (Latham queueing algorithm, §V-D)
// and read-modify-write atomics, on both backends.

#include <gtest/gtest.h>

#include <vector>

#include "src/armci/armci.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {
namespace {

using mpisim::Platform;

class ArmciMutexTest : public ::testing::TestWithParam<Backend> {
 protected:
  Options opts() const {
    Options o;
    o.backend = GetParam();
    return o;
  }
};

TEST_P(ArmciMutexTest, CreateDestroyCycle) {
  mpisim::run(4, Platform::ideal, [&] {
    init(opts());
    create_mutexes(3);
    destroy_mutexes();
    create_mutexes(1);
    destroy_mutexes();
    finalize();
  });
}

TEST_P(ArmciMutexTest, DoubleCreateThrows) {
  EXPECT_THROW(mpisim::run(2, Platform::ideal,
                           [&] {
                             init(opts());
                             create_mutexes(1);
                             create_mutexes(1);
                           }),
               mpisim::MpiError);
}

TEST_P(ArmciMutexTest, UncontendedLockUnlock) {
  mpisim::run(4, Platform::ideal, [&] {
    init(opts());
    create_mutexes(2);
    barrier();
    // Each rank locks a mutex hosted on its right neighbor.
    const int host = (mpisim::rank() + 1) % 4;
    lock(0, host);
    unlock(0, host);
    lock(1, host);
    unlock(1, host);
    barrier();
    destroy_mutexes();
    finalize();
  });
}

TEST_P(ArmciMutexTest, MutualExclusionProtectsCounter) {
  // The classic test: unprotected read-modify-write would lose updates;
  // with the mutex every increment must land.
  mpisim::run(8, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(sizeof(std::int64_t));
    if (mpisim::rank() == 0)
      *static_cast<std::int64_t*>(bases[0]) = 0;
    create_mutexes(1);
    barrier();

    const int iters = 25;
    for (int i = 0; i < iters; ++i) {
      lock(0, 0);
      std::int64_t v = 0;
      get(bases[0], &v, sizeof v, 0);
      ++v;
      put(&v, bases[0], sizeof v, 0);
      fence(0);
      unlock(0, 0);
    }
    barrier();
    if (mpisim::rank() == 0) {
      EXPECT_EQ(*static_cast<std::int64_t*>(bases[0]), 8 * iters);
    }
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    destroy_mutexes();
    finalize();
  });
}

TEST_P(ArmciMutexTest, IndependentMutexesDoNotInterfere) {
  mpisim::run(4, Platform::ideal, [&] {
    init(opts());
    create_mutexes(4);
    barrier();
    // Each rank repeatedly takes its *own* mutex on host 0; no deadlock
    // and no cross-talk.
    for (int i = 0; i < 20; ++i) {
      lock(mpisim::rank(), 0);
      unlock(mpisim::rank(), 0);
    }
    barrier();
    destroy_mutexes();
    finalize();
  });
}

TEST_P(ArmciMutexTest, LockOnEveryHost) {
  mpisim::run(4, Platform::ideal, [&] {
    init(opts());
    create_mutexes(1);
    barrier();
    for (int host = 0; host < 4; ++host) {
      lock(0, host);
      unlock(0, host);
    }
    barrier();
    destroy_mutexes();
    finalize();
  });
}

TEST_P(ArmciMutexTest, InvalidMutexIndexThrows) {
  EXPECT_THROW(mpisim::run(2, Platform::ideal,
                           [&] {
                             init(opts());
                             create_mutexes(1);
                             barrier();
                             lock(5, 0);
                           }),
               mpisim::MpiError);
}

INSTANTIATE_TEST_SUITE_P(Backends, ArmciMutexTest,
                         ::testing::Values(Backend::mpi, Backend::native,
                                           Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::mpi: return "Mpi";
                             case Backend::native: return "Native";
                             case Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

class ArmciRmwTest : public ::testing::TestWithParam<Backend> {
 protected:
  Options opts() const {
    Options o;
    o.backend = GetParam();
    return o;
  }
};

TEST_P(ArmciRmwTest, FetchAndAddSequential) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(sizeof(std::int64_t));
    if (mpisim::rank() == 0) *static_cast<std::int64_t*>(bases[0]) = 100;
    barrier();
    if (mpisim::rank() == 1) {
      std::int64_t old = 0;
      rmw(RmwOp::fetch_and_add_long, &old, bases[0], 5, 0);
      EXPECT_EQ(old, 100);
      rmw(RmwOp::fetch_and_add_long, &old, bases[0], 5, 0);
      EXPECT_EQ(old, 105);
    }
    barrier();
    if (mpisim::rank() == 0) {
      EXPECT_EQ(*static_cast<std::int64_t*>(bases[0]), 110);
    }
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciRmwTest, FetchAndAddInt32) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(sizeof(std::int32_t));
    if (mpisim::rank() == 0) *static_cast<std::int32_t*>(bases[0]) = -3;
    barrier();
    if (mpisim::rank() == 1) {
      std::int32_t old = 0;
      rmw(RmwOp::fetch_and_add, &old, bases[0], 10, 0);
      EXPECT_EQ(old, -3);
    }
    barrier();
    if (mpisim::rank() == 0) {
      EXPECT_EQ(*static_cast<std::int32_t*>(bases[0]), 7);
    }
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciRmwTest, SwapExchangesValues) {
  mpisim::run(2, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(sizeof(std::int64_t));
    if (mpisim::rank() == 0) *static_cast<std::int64_t*>(bases[0]) = 77;
    barrier();
    if (mpisim::rank() == 1) {
      std::int64_t mine = 33;
      rmw(RmwOp::swap_long, &mine, bases[0], 0, 0);
      EXPECT_EQ(mine, 77);
    }
    barrier();
    if (mpisim::rank() == 0) {
      EXPECT_EQ(*static_cast<std::int64_t*>(bases[0]), 33);
    }
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciRmwTest, ConcurrentFetchAndAddIsAtomic) {
  // The nxtval pattern (dynamic load balancing in NWChem): every rank
  // pulls distinct ticket numbers from a shared counter.
  mpisim::run(8, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(sizeof(std::int64_t));
    if (mpisim::rank() == 0) *static_cast<std::int64_t*>(bases[0]) = 0;
    barrier();

    const int per_rank = 20;
    std::vector<std::int64_t> tickets;
    for (int i = 0; i < per_rank; ++i) {
      std::int64_t t = -1;
      rmw(RmwOp::fetch_and_add_long, &t, bases[0], 1, 0);
      tickets.push_back(t);
    }
    // Tickets are strictly increasing for each caller...
    for (std::size_t i = 1; i < tickets.size(); ++i)
      EXPECT_GT(tickets[i], tickets[i - 1]);
    barrier();
    // ...and globally every increment landed exactly once.
    if (mpisim::rank() == 0) {
      EXPECT_EQ(*static_cast<std::int64_t*>(bases[0]), 8 * per_rank);
    }
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST_P(ArmciRmwTest, RmwOnDifferentTargets) {
  mpisim::run(4, Platform::ideal, [&] {
    init(opts());
    std::vector<void*> bases = malloc_world(sizeof(std::int64_t));
    *static_cast<std::int64_t*>(
        bases[static_cast<std::size_t>(mpisim::rank())]) = 0;
    barrier();
    // Every rank bumps every other rank's counter once.
    for (int p = 0; p < 4; ++p) {
      std::int64_t old = 0;
      rmw(RmwOp::fetch_and_add_long, &old, bases[static_cast<std::size_t>(p)],
          1, p);
    }
    barrier();
    EXPECT_EQ(*static_cast<std::int64_t*>(
                  bases[static_cast<std::size_t>(mpisim::rank())]),
              4);
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, ArmciRmwTest,
                         ::testing::Values(Backend::mpi, Backend::native,
                                           Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::mpi: return "Mpi";
                             case Backend::native: return "Native";
                             case Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace armci
