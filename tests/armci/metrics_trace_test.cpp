// Tests for the observability layer: log-bucketed latency histograms with
// percentile queries, the per-rank virtual-time trace ring buffer (begin/end
// events around every one-sided op), per-window lock/epoch counters, and the
// JSON exporters (armci-metrics-v1 and Chrome trace_event).

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace armci {
namespace {

using mpisim::Platform;
using mpisim::RankTrace;
using mpisim::TraceEvent;

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_ns(), 0.0);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.percentile(0.95), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleClampsToExactMax) {
  LatencyHistogram h;
  h.record(5.0);  // bucket [4, 8): upper edge 8 must clamp to the true max
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(0.5), 5.0);
  EXPECT_EQ(h.percentile(0.95), 5.0);
  EXPECT_EQ(h.max_ns(), 5.0);
  EXPECT_EQ(h.mean_ns(), 5.0);
}

TEST(LatencyHistogramTest, PercentileIsBucketUpperEdge) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(3.0);   // bucket [2, 4)
  for (int i = 0; i < 5; ++i) h.record(1000.0);  // bucket [512, 1024)
  EXPECT_EQ(h.count(), 105u);
  // ceil(0.50 * 105) = 53 and ceil(0.95 * 105) = 100 samples are reached
  // within the [2, 4) bucket, so both percentiles report its upper edge.
  EXPECT_EQ(h.percentile(0.50), 4.0);
  EXPECT_EQ(h.percentile(0.95), 4.0);
  // ceil(0.99 * 105) = 104 lands in [512, 1024); the 1024 edge clamps to
  // the exact maximum.
  EXPECT_EQ(h.percentile(0.99), 1000.0);
  EXPECT_EQ(h.max_ns(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean_ns(), (100.0 * 3.0 + 5.0 * 1000.0) / 105.0);
}

TEST(LatencyHistogramTest, SubNanosecondSamplesLandInFirstBucket) {
  LatencyHistogram h;
  h.record(0.25);
  h.record(0.0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.percentile(0.5), 0.25);  // bucket edge 2.0 clamped to max
}

TEST(LatencyHistogramTest, ResetZeroesEverything) {
  LatencyHistogram h;
  h.record(100.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_ns(), 0.0);
  EXPECT_EQ(h.sum_ns(), 0.0);
  EXPECT_EQ(h.percentile(0.95), 0.0);
}

// ---------------------------------------------------------------------------
// Trace events from live operations
// ---------------------------------------------------------------------------

/// Number of balanced begin/end pairs of `name`, asserting every end comes
/// at or after its begin (virtual time never runs backwards within an op).
int matched_pairs(const std::vector<TraceEvent>& events, const char* name) {
  int pairs = 0;
  std::vector<double> begins;
  for (const TraceEvent& e : events) {
    if (std::strcmp(e.name, name) != 0) continue;
    if (e.phase == 'B') {
      begins.push_back(e.ts_ns);
    } else if (e.phase == 'E') {
      if (begins.empty()) {
        ADD_FAILURE() << "unmatched end event for " << name;
        continue;
      }
      EXPECT_GE(e.ts_ns, begins.back()) << name;
      begins.pop_back();
      ++pairs;
    }
  }
  EXPECT_TRUE(begins.empty()) << "unmatched begin event for " << name;
  return pairs;
}

TEST(TraceTest, EveryOneSidedOpEmitsBeginEndPairs) {
  mpisim::run(2, Platform::infiniband, [] {
    Options o;
    o.metrics = true;
    o.trace = true;
    init(o);
    std::vector<void*> bases = malloc_world(1024);
    create_mutexes(1);
    barrier();
    if (mpisim::rank() == 0) {
      std::vector<char> local(256);
      std::iota(local.begin(), local.end(), 0);
      put(local.data(), bases[1], 64, 1);
      get(bases[1], local.data(), 64, 1);
      const double one = 1.0;
      double d[4] = {1, 2, 3, 4};
      acc(AccType::float64, &one, d, bases[1], 32, 1);

      StridedSpec s;
      s.stride_levels = 1;
      s.count = {32, 4};
      s.src_strides = {32};
      s.dst_strides = {64};
      put_strided(local.data(), bases[1], s, 1);

      Giov g;
      g.bytes = 16;
      for (int i = 0; i < 4; ++i) {
        g.src.push_back(local.data() + i * 16);
        g.dst.push_back(static_cast<char*>(bases[1]) + 512 + i * 32);
      }
      put_iov({&g, 1}, 1);

      std::int64_t old = 0;
      rmw(RmwOp::fetch_and_add_long, &old, bases[1], 1, 1);
      lock(0, 0);
      unlock(0, 0);

      const std::vector<TraceEvent> ev = mpisim::tracer().events();
      EXPECT_EQ(matched_pairs(ev, "armci.put"), 1);
      EXPECT_EQ(matched_pairs(ev, "armci.get"), 1);
      EXPECT_EQ(matched_pairs(ev, "armci.acc"), 1);
      EXPECT_EQ(matched_pairs(ev, "armci.put_strided"), 1);
      EXPECT_EQ(matched_pairs(ev, "armci.put_iov"), 1);
      EXPECT_EQ(matched_pairs(ev, "armci.rmw"), 1);
      EXPECT_EQ(matched_pairs(ev, "armci.lock"), 1);
      // Two mutex round-trips: the MPI-2 backend implements rmw through
      // the queueing-mutex protocol, plus the explicit lock()/unlock().
      EXPECT_EQ(matched_pairs(ev, "qmutex.lock"), 2);
      EXPECT_EQ(matched_pairs(ev, "qmutex.unlock"), 2);
      // Backend hooks nest inside the API pairs: 3 contiguous transfers.
      EXPECT_EQ(matched_pairs(ev, "mpi.contig"), 3);
      EXPECT_GE(matched_pairs(ev, "win.lock_excl"), 3);
      EXPECT_EQ(mpisim::tracer().dropped(), 0u);

      // Per-window counters: the data window saw exclusive epochs.
      std::uint64_t excl = 0, epochs = 0;
      for (const auto& [id, ws] : mpisim::tracer().win_stats()) {
        excl += ws.exclusive_locks;
        epochs += ws.epochs;
      }
      EXPECT_GE(excl, 3u);
      EXPECT_GE(epochs, 3u);

      // The registry recorded one latency sample per op class, each with
      // positive virtual duration on the InfiniBand profile.
      for (int c = 0; c < kOpClassCount; ++c) {
        const auto cls = static_cast<OpClass>(c);
        EXPECT_EQ(metrics().op(cls).latency.count(), 1u)
            << op_class_name(cls);
        EXPECT_GT(metrics().op(cls).latency.max_ns(), 0.0)
            << op_class_name(cls);
      }
    }
    barrier();
    destroy_mutexes();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST(TraceTest, DisabledByDefaultAndCostsNothing) {
  mpisim::run(2, Platform::ideal, [] {
    init({});
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      char c = 1;
      put(&c, bases[1], 1, 1);
      EXPECT_FALSE(mpisim::tracer().enabled());
      EXPECT_TRUE(mpisim::tracer().events().empty());
      EXPECT_EQ(metrics().op(OpClass::put).latency.count(), 0u);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST(TraceTest, RingBufferOverwritesOldestAndCountsDrops) {
  mpisim::run(2, Platform::ideal, [] {
    Options o;
    o.trace = true;
    o.trace_capacity = 8;
    init(o);
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      char c = 1;
      for (int i = 0; i < 16; ++i) put(&c, bases[1], 1, 1);
      EXPECT_EQ(mpisim::tracer().events().size(), 8u);
      EXPECT_GT(mpisim::tracer().total_events(), 8u);
      EXPECT_EQ(mpisim::tracer().dropped(),
                mpisim::tracer().total_events() - 8u);
      // Chronological order survives the wrap-around.
      double prev = -1.0;
      for (const TraceEvent& e : mpisim::tracer().events()) {
        EXPECT_GE(e.ts_ns, prev);
        prev = e.ts_ns;
      }
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

TEST(TraceTest, ResetStatsClearsLatencyHistograms) {
  mpisim::run(2, Platform::ideal, [] {
    Options o;
    o.metrics = true;
    init(o);
    std::vector<void*> bases = malloc_world(64);
    barrier();
    if (mpisim::rank() == 0) {
      char c = 1;
      put(&c, bases[1], 1, 1);
      EXPECT_EQ(metrics().op(OpClass::put).latency.count(), 1u);
      reset_stats();
      EXPECT_EQ(metrics().op(OpClass::put).latency.count(), 0u);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

// ---------------------------------------------------------------------------
// JSON exporters
// ---------------------------------------------------------------------------

/// Minimal structural JSON check: braces/brackets balance outside strings
/// and every string closes.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_str = false, esc = false;
  for (char c : s) {
    if (in_str) {
      if (esc)
        esc = false;
      else if (c == '\\')
        esc = true;
      else if (c == '"')
        in_str = false;
      continue;
    }
    if (c == '"')
      in_str = true;
    else if (c == '{' || c == '[')
      ++depth;
    else if (c == '}' || c == ']')
      if (--depth < 0) return false;
  }
  return depth == 0 && !in_str;
}

TEST(TraceJsonTest, ChromeTraceDocumentIsWellFormed) {
  RankTrace r0, r1;
  r0.rank = 0;
  r0.events.push_back({"armci.put", mpisim::TraceCat::api, 'B', 100.0, 64});
  r0.events.push_back({"armci.put", mpisim::TraceCat::api, 'E', 350.0, 64});
  r1.rank = 1;
  r1.events.push_back({"win.lock_excl", mpisim::TraceCat::window, 'B', 10.0,
                       1});
  r1.events.push_back({"win.lock_excl", mpisim::TraceCat::window, 'E', 20.0,
                       1});
  const std::string doc = mpisim::chrome_trace_json({r0, r1});
  EXPECT_TRUE(json_balanced(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(doc.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"window\""), std::string::npos);
  // 100 ns -> 0.1 us: timestamps are microseconds in the Chrome format.
  EXPECT_NE(doc.find("\"ts\":0.1"), std::string::npos);
}

TEST(TraceJsonTest, EmptyTraceIsStillValid) {
  const std::string doc = mpisim::chrome_trace_json({});
  EXPECT_TRUE(json_balanced(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceJsonTest, MetricsDocumentIsWellFormed) {
  mpisim::run(2, Platform::infiniband, [] {
    Options o;
    o.metrics = true;
    o.trace = true;
    init(o);
    std::vector<void*> bases = malloc_world(256);
    barrier();
    if (mpisim::rank() == 0) {
      char buf[64] = {};
      put(buf, bases[1], 64, 1);
      get(bases[1], buf, 32, 1);
      const std::string doc = metrics_json();
      EXPECT_TRUE(json_balanced(doc)) << doc;
      EXPECT_NE(doc.find("\"schema\":\"armci-metrics-v1\""),
                std::string::npos);
      EXPECT_NE(doc.find("\"rank\":0"), std::string::npos);
      EXPECT_NE(doc.find("\"put\":{\"count\":1"), std::string::npos);
      EXPECT_NE(doc.find("\"get\":{\"count\":1"), std::string::npos);
      EXPECT_NE(doc.find("\"windows\":["), std::string::npos);
      EXPECT_NE(doc.find("\"exclusive_locks\""), std::string::npos);
      EXPECT_NE(doc.find("\"trace\":{\"enabled\":true"), std::string::npos);
    }
    barrier();
    free(bases[static_cast<std::size_t>(mpisim::rank())]);
    finalize();
  });
}

}  // namespace
}  // namespace armci
