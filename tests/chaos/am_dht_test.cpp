// Chaos: the sharded-DHT delegate workload (examples/dht walkthrough)
// under a seeded survivable-mode crash, shrunk to test scale. A shard
// owner dies mid-request-stream; every in-flight rpc at the dead owner
// surfaces Errc::crashed through its handle exactly once, subsequent gets
// fail over to the buddy replica bit-exact, and no acknowledged write is
// lost or duplicated. Also: flooding a stalled rank against a configured
// mailbox cap surfaces Errc::resource_exhausted cleanly and the victimized
// mailbox's high-water gauge records the pressure.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "src/am/am.hpp"
#include "src/armci/armci.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace am {
namespace {

using mpisim::Errc;
using mpisim::MpiError;

constexpr double kCrashAt = 1e15;  // reachable only by a deliberate jump

mpisim::Config survivable_cfg(int nranks,
                              std::vector<mpisim::RankCrashSpec> crashes) {
  mpisim::Config cfg;
  cfg.nranks = nranks;
  cfg.platform = mpisim::Platform::infiniband;
  cfg.fault.seed = 7;
  cfg.fault.survivable = true;
  cfg.fault.crashes = std::move(crashes);
  return cfg;
}

struct Slot {
  std::uint64_t ver = 0;
  std::int64_t val = 0;
};

struct PutArg {
  std::uint64_t slot = 0;
  std::uint64_t replica = 0;
  std::uint64_t ver = 0;
  std::int64_t val = 0;
};

TEST(AmDhtChaosTest, ShardOwnerCrashMidStreamFailsOverBitExact) {
  const int n = 6;
  const int victim = n - 1;
  const int buddy = 0;  // replica of the victim's shard lives on owner+1
  constexpr std::uint64_t kSlots = 64;
  mpisim::run(survivable_cfg(n, {{victim, kCrashAt}}), [&] {
    const int me = mpisim::rank();
    armci::init();
    am::init();
    std::vector<Slot> primary(kSlots), replica(kSlots);
    const int h_put = am::register_handler(
        [&](int, const void* a, std::size_t, void*, std::size_t) {
          PutArg arg;
          std::memcpy(&arg, a, sizeof arg);
          Slot& s =
              (arg.replica != 0 ? replica : primary).at(arg.slot);
          if (arg.ver > s.ver) {
            s.ver = arg.ver;
            s.val = arg.val;
          }
          return std::size_t{0};
        });
    const int h_get = am::register_handler(
        [&](int, const void* a, std::size_t, void* r, std::size_t) {
          PutArg arg;
          std::memcpy(&arg, a, sizeof arg);
          const Slot s =
              (arg.replica != 0 ? replica : primary).at(arg.slot);
          std::memcpy(r, &s, sizeof s);
          return sizeof s;
        });
    armci::barrier();

    if (me == victim) {
      // Serve the fill phase, then jump past the scheduled crash time and
      // die at the next fault point (the exception unwinds the rank).
      am::poll_wait([&] {
        std::uint64_t full = 0;
        for (const Slot& s : primary) full += s.ver != 0 ? 1 : 0;
        return full == kSlots;
      });
      mpisim::clock().advance(2 * kCrashAt);
      mpisim::world().barrier();
      std::abort();  // unreachable: the fault point must throw
    }
    if (me == 1) {
      // Phase 1: fill the victim's shard (and its replica on the buddy)
      // with acknowledged writes -- these must survive the failover.
      for (std::uint64_t s = 0; s < kSlots; ++s) {
        PutArg arg;
        arg.slot = s;
        arg.ver = 1;
        arg.val = static_cast<std::int64_t>(0x1000 + s);
        arg.replica = 0;
        am::rpc(victim, h_put, &arg, sizeof arg).wait();
        arg.replica = 1;
        am::rpc(buddy, h_put, &arg, sizeof arg).wait();
      }
      // Phase 2: keep streaming at the owner until the crash lands in the
      // middle of the stream. Each in-flight rpc surfaces Errc::crashed
      // through its handle exactly once.
      int crashed_raises = 0;
      Handle in_flight;
      for (int i = 0; i < 1 << 20; ++i) {
        PutArg arg;
        arg.slot = kSlots - 1;
        arg.ver = 2 + static_cast<std::uint64_t>(i);
        arg.val = -1;  // never acknowledged: allowed to be lost
        Handle h = rpc(victim, h_put, &arg, sizeof arg);
        try {
          h.wait();
        } catch (const MpiError& e) {
          EXPECT_EQ(e.code(), Errc::crashed) << e.what();
          ++crashed_raises;
          in_flight = h;
          break;
        }
      }
      EXPECT_EQ(crashed_raises, 1);
      // Exactly once: the surfaced handle now reads complete -- repeated
      // test() neither re-raises nor blocks.
      EXPECT_TRUE(in_flight.test());
      EXPECT_TRUE(in_flight.test());
      mpisim::world().failure_ack();
      // Failover: every acknowledged fill write is served bit-exact by the
      // buddy replica.
      for (std::uint64_t s = 0; s < kSlots; ++s) {
        PutArg arg;
        arg.slot = s;
        arg.replica = 1;
        Handle h = rpc(buddy, h_get, &arg, sizeof arg);
        h.wait();
        const Slot got = h.reply_as<Slot>();
        EXPECT_EQ(got.ver, 1u) << "slot " << s;
        EXPECT_EQ(got.val, static_cast<std::int64_t>(0x1000 + s))
            << "slot " << s;
      }
    }
    am::barrier();
    am::finalize();
    armci::finalize();
  });
}

TEST(AmDhtChaosTest, FloodingAStalledRankHitsTheCapCleanly) {
  mpisim::Config cfg;
  cfg.nranks = 3;
  cfg.platform = mpisim::Platform::ideal;
  cfg.mailbox_cap_bytes = 8192;
  int raised = 0;
  std::atomic<bool> capped{false};
  mpisim::run(cfg, [&] {
    armci::init();
    am::init();
    std::uint64_t sunk = 0;
    const int h_sink = am::register_handler(
        [&](int, const void*, std::size_t, void*, std::size_t) {
          ++sunk;
          return std::size_t{0};
        });
    armci::barrier();
    if (mpisim::rank() == 0) {
      // Rank 2 is stalled (never polling): fire-and-forget delegates pile
      // up in its unexpected queue until the cap stops the flood at the
      // SENDER, with a clean error instead of unbounded buffering.
      std::vector<std::uint8_t> payload(1024, 0xab);
      try {
        for (int i = 0; i < 1 << 16; ++i)
          rpc_ff(2, h_sink, payload.data(), payload.size());
        ADD_FAILURE() << "eager delegate buffering is unbounded";
      } catch (const MpiError& e) {
        EXPECT_EQ(e.code(), Errc::resource_exhausted) << e.what();
        std::lock_guard lk(mpisim::ctx().core().mu());
        ++raised;
      }
      capped.store(true, std::memory_order_release);
    }
    if (mpisim::rank() == 2) {
      // Stall in host time until the flood has hit the cap, then drain:
      // everything that was accepted is still served, and the high-water
      // gauge recorded the pressure.
      while (!capped.load(std::memory_order_acquire))
        std::this_thread::yield();
      {
        std::lock_guard lk(mpisim::ctx().core().mu());
        EXPECT_GE(mpisim::ctx()
                      .core()
                      .mailbox(mpisim::rank())
                      .high_water_bytes(),
                  7000u);
      }
      am::poll_wait([&] { return sunk >= 7; });
      EXPECT_GE(sunk, 7u);
    }
    am::barrier();
    // finalize() quiesces the default termination counter: the delegates
    // refused at the cap were rolled out of the issued balance, so this
    // converges once the accepted ones are served.
    am::finalize();
    armci::finalize();
  });
  EXPECT_EQ(raised, 1);
}

}  // namespace
}  // namespace am
