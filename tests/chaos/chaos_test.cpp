// Chaos-test harness: seeded randomized fault schedules over representative
// ARMCI workloads. The invariant under every schedule is liveness with
// diagnosis: each rank either completes cleanly or raises a classified
// MpiError (aborted / wait_timeout / crashed / transient) -- no hangs, no
// leaks (the suite runs under ASan in CI), and the same seed reproduces the
// identical failure trace. Override the schedule seed with CHAOS_SEED.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {
namespace {

using mpisim::Errc;
using mpisim::Platform;

std::uint64_t chaos_seed() {
  const char* env = std::getenv("CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 20260805ull;
}

enum class Kind { none, completed, aborted, timed_out, crashed, transient, other };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::none: return "none";
    case Kind::completed: return "completed";
    case Kind::aborted: return "aborted";
    case Kind::timed_out: return "timed_out";
    case Kind::crashed: return "crashed";
    case Kind::transient: return "transient";
    case Kind::other: return "other";
  }
  return "?";
}

Kind classify(Errc c) {
  switch (c) {
    case Errc::aborted: return Kind::aborted;
    case Errc::wait_timeout: return Kind::timed_out;
    case Errc::crashed: return Kind::crashed;
    case Errc::transient: return Kind::transient;
    default: return Kind::other;
  }
}

/// What one rank's run ended as.
struct Outcome {
  Kind kind = Kind::none;
  std::string what;  // empty when completed

  bool operator==(const Outcome& o) const {
    return kind == o.kind && what == o.what;
  }
};

struct ChaosResult {
  std::vector<Outcome> ranks;
  std::string top_error;  // what() rethrown by run(); empty on clean runs
  std::vector<std::uint64_t> retries;    // per-rank Stats::retries
  std::vector<std::uint64_t> exhausted;  // per-rank Stats::retry_exhausted
  std::string metrics;  // rank 0's metrics_json() (when Options::metrics)
};

/// Run \p workload on every rank under \p cfg's fault schedule, recording
/// per-rank outcomes. Completing ranks capture their retry counters and
/// finalize collectively; ranks that observe a peer failure (Errc::aborted)
/// exercise the abort-safe finalize path; other victims rethrow and rely on
/// the runtime's cleanup hook -- either way nothing may leak.
ChaosResult run_chaos(const mpisim::Config& cfg, const Options& opts,
                      const std::function<void()>& workload) {
  std::cout << "[chaos] seed=" << cfg.fault.seed
            << " (override with CHAOS_SEED)\n";
  ChaosResult res;
  res.ranks.assign(static_cast<std::size_t>(cfg.nranks), {});
  res.retries.assign(static_cast<std::size_t>(cfg.nranks), 0);
  res.exhausted.assign(static_cast<std::size_t>(cfg.nranks), 0);
  try {
    mpisim::run(cfg, [&] {
      const auto me = static_cast<std::size_t>(mpisim::rank());
      try {
        init(opts);
        workload();
        res.retries[me] = stats().retries;
        res.exhausted[me] = stats().retry_exhausted;
        if (me == 0 && opts.metrics) res.metrics = metrics_json();
        finalize();
        res.ranks[me] = {Kind::completed, ""};
      } catch (const mpisim::MpiError& e) {
        res.ranks[me] = {classify(e.code()), e.what()};
        if (e.code() == Errc::aborted) finalize();
        throw;
      }
    });
  } catch (const mpisim::MpiError& e) {
    res.top_error = e.what();
  }
  return res;
}

/// The liveness invariant: every rank ended in a classified state.
void expect_invariants(const ChaosResult& res) {
  for (std::size_t r = 0; r < res.ranks.size(); ++r) {
    const Kind k = res.ranks[r].kind;
    EXPECT_TRUE(k == Kind::completed || k == Kind::aborted ||
                k == Kind::timed_out || k == Kind::crashed ||
                k == Kind::transient)
        << "rank " << r << " ended as " << kind_name(k) << ": "
        << res.ranks[r].what;
  }
}

/// Representative workload: ring put/fence/get/acc plus a contended RMW
/// counter, a barrier per round. Data checks double as retry-correctness
/// checks: a transparently retried epoch must not lose or replay updates.
std::function<void()> ring_workload(int rounds) {
  return [rounds] {
    const int me = mpisim::rank();
    const int n = mpisim::nranks();
    const int right = (me + 1) % n;
    std::vector<void*> bases = malloc_world(512);
    if (me == 0) std::memset(bases[0], 0, 512);
    barrier();
    for (int r = 0; r < rounds; ++r) {
      std::int64_t v = me * 1000 + r;
      put(&v, bases[static_cast<std::size_t>(right)], sizeof v, right);
      fence(right);
      std::int64_t back = 0;
      get(bases[static_cast<std::size_t>(right)], &back, sizeof back, right);
      EXPECT_EQ(back, v);  // single writer per slice: must read our own put
      const double one = 1.0, inc = 1.0;
      acc(AccType::float64, &one, &inc,
          static_cast<char*>(bases[static_cast<std::size_t>(right)]) + 64,
          sizeof inc, right);
      std::int64_t old = 0;
      rmw(RmwOp::fetch_and_add_long, &old,
          static_cast<char*>(bases[0]) + 128, 1, 0);
      barrier();
    }
  };
}

/// Mutex-guarded shared-counter workload (queueing-mutex handoff paths).
std::function<void()> mutex_workload(int rounds) {
  return [rounds] {
    const int me = mpisim::rank();
    std::vector<void*> bases = malloc_world(sizeof(std::int64_t));
    if (me == 0) std::memset(bases[0], 0, sizeof(std::int64_t));
    create_mutexes(1);
    barrier();
    for (int r = 0; r < rounds; ++r) {
      lock(0, 0);
      std::int64_t c = 0;
      get(bases[0], &c, sizeof c, 0);
      ++c;
      put(&c, bases[0], sizeof c, 0);
      fence(0);
      unlock(0, 0);
      barrier();
    }
  };
}

/// Nonblocking-aggregation workload: each round defers a batch of puts plus
/// an identity-scale accumulate to the right neighbor (one coalesced queue),
/// completes with wait_proc, and verifies via blocking gets. A transient
/// fault at the coalesced flush epoch fires before any op issues, so the
/// whole batch replays; the data checks double as replay-correctness checks
/// and the accumulate slot catches double-application.
std::function<void()> nb_workload(int rounds) {
  return [rounds] {
    const int me = mpisim::rank();
    const int n = mpisim::nranks();
    const int right = (me + 1) % n;
    constexpr std::size_t kSlot = sizeof(std::int64_t);
    constexpr std::size_t kDepth = 8;
    std::vector<void*> bases = malloc_world(kSlot * (kDepth + 1));
    access_begin(bases[static_cast<std::size_t>(me)]);
    std::memset(bases[static_cast<std::size_t>(me)], 0, kSlot * (kDepth + 1));
    access_end(bases[static_cast<std::size_t>(me)]);
    barrier();
    char* rbase = static_cast<char*>(bases[static_cast<std::size_t>(right)]);
    for (int r = 0; r < rounds; ++r) {
      std::int64_t vals[kDepth];
      for (std::size_t i = 0; i < kDepth; ++i)
        vals[i] = me * 1000000 + r * 100 + static_cast<std::int64_t>(i);
      for (std::size_t i = 0; i < kDepth; ++i)
        nb_put(&vals[i], rbase + i * kSlot, kSlot, right);
      const std::int64_t one = 1, inc = 1;
      nb_acc(AccType::int64, &one, &inc, rbase + kDepth * kSlot, kSlot,
             right);
      wait_proc(right);
      for (std::size_t i = 0; i < kDepth; ++i) {
        std::int64_t back = 0;
        get(rbase + i * kSlot, &back, kSlot, right);
        EXPECT_EQ(back, vals[i]);  // single writer per slice
      }
      barrier();
    }
    // One increment per round, exactly once each, even under retries.
    std::int64_t count = 0;
    get(rbase + kDepth * kSlot, &count, kSlot, right);
    EXPECT_EQ(count, rounds);
  };
}

/// Multi-owner GA workload: a column-tiled array gives every rank one tile,
/// and each rank's working patch is its own row across ALL tiles, so every
/// put/get/acc fans out one pipelined per-owner batch to each rank while
/// keeping a single writer per element (conflict-free under the RMA
/// checker). The round-trip data checks double as per-owner batch replay
/// checks: a transiently failed owner epoch must replay without losing or
/// double-applying any other owner's batch, and the accumulate slot catches
/// double-application directly.
std::function<void()> ga_workload(int rounds) {
  return [rounds] {
    const int me = mpisim::rank();
    const int n = mpisim::nranks();
    const std::int64_t cols_per = 4;
    const std::int64_t cols = n * cols_per;
    const std::int64_t dims[] = {n, cols};
    const std::int64_t chunk[] = {n, 1};  // one column tile per rank
    ga::GlobalArray g =
        ga::GlobalArray::create("chaos", dims, ga::ElemType::dbl, chunk);
    g.zero();

    ga::Patch myrow;
    myrow.lo = {me, 0};
    myrow.hi = {me, cols - 1};
    std::vector<double> vals(static_cast<std::size_t>(cols));
    std::vector<double> back(static_cast<std::size_t>(cols));
    for (int r = 0; r < rounds; ++r) {
      for (std::int64_t c = 0; c < cols; ++c)
        vals[static_cast<std::size_t>(c)] =
            me * 1000000.0 + r * 100.0 + static_cast<double>(c);
      g.put(myrow, vals.data());
      g.sync();

      std::fill(back.begin(), back.end(), -1.0);
      g.get(myrow, back.data());
      EXPECT_EQ(back, vals);  // single writer per row

      const double one = 1.0;
      std::vector<double> inc(static_cast<std::size_t>(cols), 1.0);
      g.acc(myrow, inc.data(), &one);
      g.sync();

      // Element-wise gather across every owner, duplicate subscripts
      // included (each listed element must come back identically).
      std::vector<std::int64_t> subs;
      for (std::int64_t c = 0; c < cols; c += cols_per) {
        subs.push_back(me);
        subs.push_back(c);
        subs.push_back(me);
        subs.push_back(c);
      }
      const auto ng = static_cast<std::int64_t>(subs.size() / 2);
      std::vector<double> gathered(static_cast<std::size_t>(ng), 0.0);
      g.gather(gathered.data(), subs, ng);
      for (std::int64_t i = 0; i < ng; ++i) {
        const std::int64_t c = subs[static_cast<std::size_t>(2 * i + 1)];
        EXPECT_DOUBLE_EQ(gathered[static_cast<std::size_t>(i)],
                         vals[static_cast<std::size_t>(c)] + 1.0);
      }
      g.sync();
    }
    g.destroy();
  };
}

class ChaosBackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(ChaosBackendTest, RankCrashAbortsEverySurvivor) {
  mpisim::Config cfg;
  cfg.nranks = 4;
  cfg.platform = Platform::infiniband;  // ideal clocks never reach at_ns
  cfg.fault.seed = chaos_seed();
  cfg.fault.crashes = {{1, 3000.0}};
  Options opts;
  opts.backend = GetParam();

  const ChaosResult res = run_chaos(cfg, opts, ring_workload(40));
  expect_invariants(res);
  EXPECT_FALSE(res.top_error.empty());
  EXPECT_EQ(res.ranks[1].kind, Kind::crashed) << res.ranks[1].what;
  for (const std::size_t r : {0u, 2u, 3u})
    EXPECT_EQ(res.ranks[r].kind, Kind::aborted)
        << "rank " << r << ": " << res.ranks[r].what;
}

TEST_P(ChaosBackendTest, TransientFaultsRecoverViaRetry) {
  mpisim::Config cfg;
  cfg.nranks = 4;
  cfg.platform = Platform::infiniband;
  cfg.fault.seed = chaos_seed();
  cfg.fault.transient.rate = 0.05;
  cfg.fault.transient.fail_count = 1;
  cfg.fault.transient.stall_ns = 100.0;
  Options opts;
  opts.backend = GetParam();
  opts.metrics = true;

  const ChaosResult res = run_chaos(cfg, opts, ring_workload(50));
  expect_invariants(res);
  EXPECT_TRUE(res.top_error.empty()) << res.top_error;
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(res.ranks[r].kind, Kind::completed)
        << "rank " << r << ": " << res.ranks[r].what;
    EXPECT_EQ(res.exhausted[r], 0u);
  }
  const std::uint64_t total_retries =
      std::accumulate(res.retries.begin(), res.retries.end(),
                      std::uint64_t{0});
  if (GetParam() == Backend::native) {
    // The native baseline issues no MPI epochs, so it has no transient
    // fault sites: the schedule must be a no-op for it.
    EXPECT_EQ(total_retries, 0u);
  } else {
    EXPECT_GT(total_retries, 0u)
        << "the schedule injected no transient faults; raise the rate";
  }
  // The retry counters are part of the armci-metrics-v1 export.
  EXPECT_NE(res.metrics.find("\"retries\":"), std::string::npos)
      << res.metrics;
  EXPECT_NE(res.metrics.find("\"transient_faults\":"), std::string::npos);
}

TEST_P(ChaosBackendTest, NbAggregationReplaysThroughTransientFaults) {
  mpisim::Config cfg;
  cfg.nranks = 4;
  cfg.platform = Platform::infiniband;
  cfg.fault.seed = chaos_seed();
  cfg.fault.transient.rate = 0.05;
  cfg.fault.transient.fail_count = 1;
  cfg.fault.transient.stall_ns = 100.0;
  Options opts;
  opts.backend = GetParam();

  const ChaosResult res = run_chaos(cfg, opts, nb_workload(30));
  expect_invariants(res);
  EXPECT_TRUE(res.top_error.empty()) << res.top_error;
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(res.ranks[r].kind, Kind::completed)
        << "rank " << r << ": " << res.ranks[r].what;
    EXPECT_EQ(res.exhausted[r], 0u);
  }
  const std::uint64_t total_retries =
      std::accumulate(res.retries.begin(), res.retries.end(),
                      std::uint64_t{0});
  if (GetParam() == Backend::native) {
    EXPECT_EQ(total_retries, 0u);
  } else {
    // The coalesced flush epochs are retry sites like any other: queued
    // batches must replay transparently.
    EXPECT_GT(total_retries, 0u)
        << "the schedule injected no transient faults; raise the rate";
  }
}

TEST_P(ChaosBackendTest, GaMultiOwnerCrashSurfacesClassifiedErrors) {
  mpisim::Config cfg;
  cfg.nranks = 4;
  cfg.platform = Platform::infiniband;
  cfg.fault.seed = chaos_seed();
  cfg.fault.crashes = {{1, 3000.0}};
  Options opts;
  opts.backend = GetParam();

  // The crashed owner must surface Errc::crashed out of the GA-layer
  // covering wait on its own rank, and every survivor's multi-owner access
  // must end as a classified abort, not a hang: flush_group drains the
  // healthy owners' queues before rethrowing the failure.
  const ChaosResult res = run_chaos(cfg, opts, ga_workload(25));
  expect_invariants(res);
  EXPECT_FALSE(res.top_error.empty());
  EXPECT_EQ(res.ranks[1].kind, Kind::crashed) << res.ranks[1].what;
  for (const std::size_t r : {0u, 2u, 3u})
    EXPECT_EQ(res.ranks[r].kind, Kind::aborted)
        << "rank " << r << ": " << res.ranks[r].what;
}

TEST_P(ChaosBackendTest, GaMultiOwnerReplaysThroughTransientFaults) {
  mpisim::Config cfg;
  cfg.nranks = 4;
  cfg.platform = Platform::infiniband;
  cfg.fault.seed = chaos_seed();
  cfg.fault.transient.rate = 0.05;
  cfg.fault.transient.fail_count = 1;
  cfg.fault.transient.stall_ns = 100.0;
  Options opts;
  opts.backend = GetParam();

  const ChaosResult res = run_chaos(cfg, opts, ga_workload(20));
  expect_invariants(res);
  EXPECT_TRUE(res.top_error.empty()) << res.top_error;
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(res.ranks[r].kind, Kind::completed)
        << "rank " << r << ": " << res.ranks[r].what;
    EXPECT_EQ(res.exhausted[r], 0u);
  }
  const std::uint64_t total_retries =
      std::accumulate(res.retries.begin(), res.retries.end(),
                      std::uint64_t{0});
  if (GetParam() == Backend::native) {
    EXPECT_EQ(total_retries, 0u);
  } else {
    // Per-owner batches are replayed at their flush epochs; the workload's
    // round-trip checks prove nothing was lost or double-applied.
    EXPECT_GT(total_retries, 0u)
        << "the schedule injected no transient faults; raise the rate";
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ChaosBackendTest,
                         ::testing::Values(Backend::mpi, Backend::native,
                                           Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::mpi: return "Mpi";
                             case Backend::native: return "Native";
                             case Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

TEST(ChaosTest, SameSeedReproducesIdenticalFailureTrace) {
  mpisim::Config cfg;
  cfg.nranks = 4;
  cfg.platform = Platform::infiniband;
  cfg.fault.seed = chaos_seed();
  cfg.fault.crashes = {{2, 8000.0}};
  cfg.fault.transient.rate = 0.05;
  cfg.fault.transient.fail_count = 1;
  cfg.fault.transient.stall_ns = 100.0;
  Options opts;  // Backend::mpi

  const ChaosResult a = run_chaos(cfg, opts, ring_workload(40));
  const ChaosResult b = run_chaos(cfg, opts, ring_workload(40));
  expect_invariants(a);
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_EQ(a.ranks[r].kind, b.ranks[r].kind) << "rank " << r;
    EXPECT_EQ(a.ranks[r].what, b.ranks[r].what) << "rank " << r;
  }
  EXPECT_EQ(a.top_error, b.top_error);
  EXPECT_EQ(a.retries, b.retries);
}

TEST(ChaosTest, CrashWhileHoldingMutexAbortsWaiters) {
  mpisim::Config cfg;
  cfg.nranks = 4;
  cfg.platform = Platform::infiniband;
  cfg.fault.seed = chaos_seed();
  cfg.fault.crashes = {{2, 5000.0}};
  Options opts;

  const ChaosResult res = run_chaos(cfg, opts, mutex_workload(40));
  expect_invariants(res);
  EXPECT_EQ(res.ranks[2].kind, Kind::crashed) << res.ranks[2].what;
  for (const std::size_t r : {0u, 1u, 3u})
    EXPECT_EQ(res.ranks[r].kind, Kind::aborted)
        << "rank " << r << ": " << res.ranks[r].what;
}

TEST(ChaosTest, WaitNotifyHitsTheVirtualTimeDeadline) {
  mpisim::Config cfg;
  cfg.nranks = 2;
  cfg.platform = Platform::ideal;  // wait_notify advances its own clock
  cfg.wait_deadline_ns = 2e5;
  Options opts;

  const ChaosResult res = run_chaos(cfg, opts, [] {
    std::vector<void*> bases = malloc_world(sizeof(int));
    if (mpisim::rank() == 1) {
      access_begin(bases[1]);
      *static_cast<int*>(bases[1]) = 0;
      access_end(bases[1]);
      // No producer ever sets the flag: must raise wait_timeout, not hang.
      wait_notify(static_cast<const int*>(bases[1]), 1);
    } else {
      // Move our deadline reference point far past rank 1's, so the barrier
      // wait below cannot hit the global deadline before wait_notify does.
      mpisim::clock().advance(1e7);
      barrier();  // rank 1 never arrives; we are woken by its failure
    }
  });
  expect_invariants(res);
  EXPECT_EQ(res.ranks[1].kind, Kind::timed_out) << res.ranks[1].what;
  EXPECT_NE(res.ranks[1].what.find("wait_notify exceeded"), std::string::npos)
      << res.ranks[1].what;
  EXPECT_EQ(res.ranks[0].kind, Kind::aborted) << res.ranks[0].what;
}

TEST(ChaosTest, Mpi3NbFlushMidBatchTransientAccumulatesExactlyOnce) {
  // Regression for the MPI-3 flush_queue replay bug: a transient fault
  // *inside* the batch (after some accumulates already issued) must resume
  // from the failed op, not replay the whole batch -- replaying would apply
  // the completed accumulates twice. The schedule is fully deterministic:
  // rate 1.0 aimed at the per-op fault site, two consults skipped, one
  // burst allowed, so on every rank exactly the 3rd op of its 4-op batch
  // fails exactly once mid-flush.
  mpisim::Config cfg;
  cfg.nranks = 4;
  cfg.platform = Platform::infiniband;
  cfg.ranks_per_node = 1;  // all targets remote: ops defer into nb queues
  cfg.fault.seed = chaos_seed();
  cfg.fault.transient.rate = 1.0;
  cfg.fault.transient.fail_count = 1;
  cfg.fault.transient.stall_ns = 100.0;
  cfg.fault.transient.site = "mpi3.nb_flush.op";
  cfg.fault.transient.skip = 2;
  cfg.fault.transient.max_bursts = 1;
  Options opts;
  opts.backend = Backend::mpi3;

  constexpr std::size_t kSlots = 4;
  const ChaosResult res = run_chaos(cfg, opts, [] {
    const int me = mpisim::rank();
    const int right = (me + 1) % mpisim::nranks();
    constexpr std::size_t kSlot = sizeof(std::int64_t);
    std::vector<void*> bases = malloc_world(kSlot * kSlots);
    access_begin(bases[static_cast<std::size_t>(me)]);
    std::memset(bases[static_cast<std::size_t>(me)], 0, kSlot * kSlots);
    access_end(bases[static_cast<std::size_t>(me)]);
    barrier();
    char* rbase = static_cast<char*>(bases[static_cast<std::size_t>(right)]);
    const std::int64_t one = 1, inc = 1;
    for (std::size_t i = 0; i < kSlots; ++i)
      nb_acc(AccType::int64, &one, &inc, rbase + i * kSlot, kSlot, right);
    wait_proc(right);  // one coalesced flush; the fault fires mid-batch
    barrier();
    for (std::size_t i = 0; i < kSlots; ++i) {
      std::int64_t v = 0;
      get(rbase + i * kSlot, &v, kSlot, right);
      EXPECT_EQ(v, 1) << "slot " << i
                      << (v > 1 ? ": accumulate applied more than once"
                                : ": accumulate lost");
    }
    barrier();
  });
  expect_invariants(res);
  EXPECT_TRUE(res.top_error.empty()) << res.top_error;
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(res.ranks[r].kind, Kind::completed)
        << "rank " << r << ": " << res.ranks[r].what;
    EXPECT_EQ(res.retries[r], 1u) << "rank " << r;
    EXPECT_EQ(res.exhausted[r], 0u);
  }
}

TEST(ChaosTest, SameNodeCrashMidDirectAccessAbortsSurvivors) {
  // All four ranks share one node on the infiniband profile, so the ring
  // traffic rides the shared-memory direct path; a peer crashing mid-run
  // must still surface as classified outcomes (the fast path polls the
  // failure flag before every direct access), never as a hang.
  mpisim::Config cfg;
  cfg.nranks = 4;
  cfg.platform = Platform::infiniband;  // ranks_per_node = 8: co-located
  cfg.fault.seed = chaos_seed();
  cfg.fault.crashes = {{1, 2000.0}};
  Options opts;
  opts.backend = Backend::mpi3;

  const ChaosResult res = run_chaos(cfg, opts, ring_workload(40));
  expect_invariants(res);
  EXPECT_FALSE(res.top_error.empty());
  EXPECT_EQ(res.ranks[1].kind, Kind::crashed) << res.ranks[1].what;
  for (const std::size_t r : {0u, 2u, 3u})
    EXPECT_EQ(res.ranks[r].kind, Kind::aborted)
        << "rank " << r << ": " << res.ranks[r].what;
}

TEST(ChaosTest, CombinedScheduleKeepsTheInvariant) {
  // Everything on at once: a crash, transient bursts, delivery delays, and
  // lock stalls, under a generous global wait deadline.
  mpisim::Config cfg;
  cfg.nranks = 4;
  cfg.platform = Platform::infiniband;
  cfg.wait_deadline_ns = 1e9;
  cfg.fault.seed = chaos_seed();
  cfg.fault.crashes = {{3, 20000.0}};
  cfg.fault.transient.rate = 0.05;
  cfg.fault.transient.fail_count = 2;
  cfg.fault.transient.stall_ns = 200.0;
  cfg.fault.delay_rate = 0.1;
  cfg.fault.delay_ns = 5000.0;
  cfg.fault.lock_stall_rate = 0.1;
  cfg.fault.lock_stall_ns = 2000.0;
  Options opts;

  const ChaosResult res = run_chaos(cfg, opts, ring_workload(60));
  expect_invariants(res);
  EXPECT_FALSE(res.top_error.empty());
  EXPECT_EQ(res.ranks[3].kind, Kind::crashed) << res.ranks[3].what;
}

}  // namespace
}  // namespace armci
