// Kill-and-recover scenarios for the survivable runtime
// (mpisim::FaultPlan::survivable): a scheduled crash marks the victim dead,
// survivors observe Errc::crashed at the operations that depend on it, and
// the layers above recover -- replicated Global Arrays fail reads over to
// buddy replicas bit-exactly, rebuild() redistributes onto the live process
// set, crashed-holder mutexes are reclaimed within the detection bound, and
// the nonblocking engine drains healthy queues past a dead owner. Override
// the schedule seed with CHAOS_SEED (the nightly chaos job randomizes it).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/armci/armci.hpp"
#include "src/armci/groups.hpp"
#include "src/ga/ga.hpp"
#include "src/mpisim/runtime.hpp"

namespace armci {
namespace {

using mpisim::Errc;
using mpisim::Platform;

std::uint64_t chaos_seed() {
  const char* env = std::getenv("CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 20260805ull;
}

enum class Kind { none, completed, crashed, other };

/// What one rank's run ended as.
struct Outcome {
  Kind kind = Kind::none;
  std::string what;
};

struct RecoveryResult {
  std::vector<Outcome> ranks;
  std::string top_error;  // what() rethrown by run(); empty on clean runs
  std::string metrics;    // rank 0's metrics_json() (when Options::metrics)
};

/// Virtual time the victims advance past before entering their killing
/// fault point; generous so every pre-crash phase completes first.
constexpr double kCrashAt = 1e9;

/// Die at the next fault point: push the clock past the scheduled crash
/// time and enter armci::barrier(), whose collective entry consults the
/// injector before joining the rendezvous (works on every backend,
/// including native, which has no window fault sites). Never returns.
void crash_self() {
  mpisim::clock().advance(2 * kCrashAt);
  barrier();
  ADD_FAILURE() << "rank " << mpisim::rank()
                << " survived its scheduled crash";
}

/// Spin (host time) until the runtime has declared \p victim dead. The
/// caller is not blocked in a simulator wait, so deadlock detection is
/// unaffected; the victim's own death poke makes progress visible.
void await_death(int victim) {
  while (!is_failed(victim)) std::this_thread::yield();
}

/// Run \p workload under a survivable one-victim crash schedule. The
/// victim's Errc::crashed is recorded and rethrown (the runtime swallows
/// it in survivable mode); every survivor is expected to finalize cleanly.
RecoveryResult run_survivable(int nranks, int victim, const Options& opts,
                              const std::function<void()>& workload) {
  mpisim::Config cfg;
  cfg.nranks = nranks;
  cfg.platform = Platform::infiniband;
  cfg.ranks_per_node = 1;  // all targets remote: no shared-memory shortcut
  cfg.fault.seed = chaos_seed();
  cfg.fault.survivable = true;
  cfg.fault.crashes = {{victim, kCrashAt}};

  RecoveryResult res;
  res.ranks.assign(static_cast<std::size_t>(nranks), {});
  try {
    mpisim::run(cfg, [&] {
      const auto me = static_cast<std::size_t>(mpisim::rank());
      try {
        init(opts);
        workload();
        if (me == 0 && opts.metrics) res.metrics = metrics_json();
        finalize();
        res.ranks[me] = {Kind::completed, ""};
      } catch (const mpisim::MpiError& e) {
        res.ranks[me] = {e.code() == Errc::crashed ? Kind::crashed
                                                   : Kind::other,
                         e.what()};
        throw;
      }
    });
  } catch (const mpisim::MpiError& e) {
    res.top_error = e.what();
  }
  return res;
}

/// The survivable-mode invariant: the victim died as Errc::crashed, every
/// survivor completed, and nothing escalated to a run-wide abort.
void expect_recovered(const RecoveryResult& res, int victim) {
  EXPECT_TRUE(res.top_error.empty()) << res.top_error;
  for (int r = 0; r < static_cast<int>(res.ranks.size()); ++r) {
    const Outcome& o = res.ranks[static_cast<std::size_t>(r)];
    if (r == victim) {
      EXPECT_EQ(o.kind, Kind::crashed) << "victim: " << o.what;
    } else {
      EXPECT_EQ(o.kind, Kind::completed)
          << "rank " << r << ": " << o.what;
    }
  }
}

class RecoveryBackendTest : public ::testing::TestWithParam<Backend> {};

TEST_P(RecoveryBackendTest, ReplicatedGaKillAndRecoverBitExact) {
  // Phase 1 (all ranks alive): every rank writes its own row of a
  // column-tiled replicated array, so each write fans out across every
  // owner and writes through to the buddy replicas. The victim then dies.
  // Phase 2 is read-only: survivors re-read every row; elements on the
  // dead owner come back through its replica, so the result must be
  // bit-exact against the no-fault values. rebuild() then redistributes
  // onto the survivors and the contents must still verify.
  constexpr int kN = 4;
  constexpr int kVictim = 2;
  Options opts;
  opts.backend = GetParam();
  opts.metrics = true;

  const RecoveryResult res = run_survivable(kN, kVictim, opts, [] {
    const int me = mpisim::rank();
    const std::int64_t n = kN;
    const std::int64_t dims[] = {n, n};
    const std::int64_t chunk[] = {n, 1};  // one column tile per rank
    ga::GlobalArray g =
        ga::GlobalArray::create("recover", dims, ga::ElemType::dbl, chunk,
                                ga::NodeMapping::linear,
                                ga::Resilience::replicate);
    g.zero();

    const auto expected = [n](std::int64_t r) {
      std::vector<double> v(static_cast<std::size_t>(n));
      for (std::int64_t c = 0; c < n; ++c)
        v[static_cast<std::size_t>(c)] = static_cast<double>(r * 100 + c);
      return v;
    };
    ga::Patch row;
    row.lo = {me, 0};
    row.hi = {me, n - 1};
    const std::vector<double> mine = expected(me);
    g.put(row, mine.data());
    g.sync();

    if (me == kVictim) {
      crash_self();
      return;
    }
    await_death(kVictim);
    EXPECT_EQ(failed_ranks(), std::vector<int>{kVictim});

    // Read-only recovery phase: bit-exact against the no-fault run.
    std::vector<double> back(static_cast<std::size_t>(n));
    for (std::int64_t r = 0; r < n; ++r) {
      row.lo = {r, 0};
      row.hi = {r, n - 1};
      std::fill(back.begin(), back.end(), -1.0);
      g.get(row, back.data());
      EXPECT_EQ(back, expected(r)) << "row " << r;
    }
    EXPECT_GT(stats().failovers, 0u);          // the dead column failed over
    EXPECT_GT(stats().replica_writes, 0u);     // phase 1 wrote through
    EXPECT_GE(mpisim::ctx().last_detect_latency_ns, 0.0);

    // Redistribute over the survivors; contents must be preserved.
    g.rebuild();
    const std::uint64_t failovers_before = stats().failovers;
    for (std::int64_t r = 0; r < n; ++r) {
      row.lo = {r, 0};
      row.hi = {r, n - 1};
      std::fill(back.begin(), back.end(), -1.0);
      g.get(row, back.data());
      EXPECT_EQ(back, expected(r)) << "post-rebuild row " << r;
    }
    // Every post-rebuild owner is alive: reads are primary again.
    EXPECT_EQ(stats().failovers, failovers_before);
    g.destroy();
  });
  expect_recovered(res, kVictim);

  // Recovery counters and the detection-latency gauge are part of the
  // armci-metrics-v1 export (captured on surviving rank 0).
  EXPECT_NE(res.metrics.find("\"failovers\":"), std::string::npos)
      << res.metrics;
  EXPECT_EQ(res.metrics.find("\"failovers\":0,"), std::string::npos)
      << res.metrics;
  EXPECT_NE(res.metrics.find("\"replica_writes\":"), std::string::npos);
  EXPECT_NE(res.metrics.find("\"detect_latency_ns\":"), std::string::npos);
  EXPECT_EQ(res.metrics.find("\"detect_latency_ns\":-1"), std::string::npos)
      << "gauge never stamped: " << res.metrics;
}

TEST_P(RecoveryBackendTest, MutexHeldByCrashedRankReclaimedWithinBound) {
  // Regression (satellite): an armci::Mutex held by a crashed rank must be
  // granted to a surviving waiter within the failure-detection bound --
  // blocked waiters may not hang and may not observe a run-wide abort. The
  // bound is checked in virtual time: the victim dies shortly after
  // advancing to 2*kCrashAt, so acquisitions must land between that death
  // and death + detect_period + a protocol allowance.
  constexpr int kN = 4;
  constexpr int kVictim = 2;
  Options opts;
  opts.backend = GetParam();
  auto observers = std::make_shared<std::atomic<int>>(0);

  const RecoveryResult res = run_survivable(kN, kVictim, opts, [observers] {
    const int me = mpisim::rank();
    std::vector<void*> bases = malloc_world(sizeof(std::int64_t));
    if (me == 0) {
      access_begin(bases[0]);
      std::memset(bases[0], 0, sizeof(std::int64_t));
      access_end(bases[0]);
    }
    create_mutexes(1);
    barrier();
    if (me == kVictim) lock(0, 0);
    barrier();  // every survivor sees the victim holding the mutex
    if (me == kVictim) {
      crash_self();
      return;
    }

    lock(0, 0);  // blocks on the dead holder until recovery hands over
    const double acquired_ns = mpisim::clock().now_ns();
    // The waiter that reclaimed the dead holder observed the death (gauge
    // stamped): its acquisition sits between the death (>= the victim's
    // 2*kCrashAt advance) and the detection bound -- death time (at most
    // kCrashAt of pre-crash virtual time plus the advance) + detect_period
    // (1e3) + an allowance for the handoff protocol and predecessors'
    // critical sections. Later waiters take ordinary handoffs, which on
    // the native backend do not propagate the releaser's virtual time.
    if (mpisim::ctx().last_detect_latency_ns >= 0.0) {
      observers->fetch_add(1);
      EXPECT_GE(acquired_ns, 2 * kCrashAt);
      EXPECT_LE(acquired_ns, 3 * kCrashAt + 1e3 + 1e6)
          << "rank " << me << " acquired far past the detection bound";
    }

    std::int64_t c = 0;
    get(bases[0], &c, sizeof c, 0);
    ++c;
    put(&c, bases[0], sizeof c, 0);
    fence(0);
    unlock(0, 0);

    barrier();  // dead member excused
    if (me == 0) {
      std::int64_t total = 0;
      get(bases[0], &total, sizeof total, 0);
      EXPECT_EQ(total, kN - 1);  // every survivor's increment, exactly once
    }
    barrier();
    destroy_mutexes();
    free(bases[static_cast<std::size_t>(me)]);
  });
  expect_recovered(res, kVictim);
  // At least one waiter (the reclaimer) must have observed the death.
  EXPECT_GE(observers->load(), 1);
}

TEST_P(RecoveryBackendTest, WaitersOnMutexHostedByCrashedRankRaiseCrashed) {
  // Regression: a mutex *hosted* on the crashed rank (here also held by it)
  // strands waiters against state that dies with the host -- survivors must
  // observe Errc::crashed instead of hanging. On the native backend the
  // waiters' wait predicate used to keep dereferencing the host's ProcState
  // after user_state_cleanup freed it (use-after-free).
  constexpr int kN = 4;
  constexpr int kVictim = 2;
  Options opts;
  opts.backend = GetParam();
  auto raised = std::make_shared<std::atomic<int>>(0);

  const RecoveryResult res = run_survivable(kN, kVictim, opts, [raised] {
    const int me = mpisim::rank();
    create_mutexes(1);
    barrier();
    if (me == kVictim) lock(0, kVictim);  // hold our own hosted mutex
    barrier();  // every survivor sees the victim holding it
    if (me == kVictim) {
      crash_self();
      return;
    }
    try {
      lock(0, kVictim);
      ADD_FAILURE() << "lock on a dead host's mutex completed";
    } catch (const mpisim::MpiError& e) {
      EXPECT_EQ(e.code(), Errc::crashed) << e.what();
      raised->fetch_add(1);
    }
    barrier();  // dead member excused
    destroy_mutexes();
  });
  expect_recovered(res, kVictim);
  EXPECT_EQ(raised->load(), kN - 1);
}

INSTANTIATE_TEST_SUITE_P(Backends, RecoveryBackendTest,
                         ::testing::Values(Backend::mpi, Backend::native,
                                           Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::mpi: return "Mpi";
                             case Backend::native: return "Native";
                             case Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

TEST(RecoveryTest, CounterDrivenTasksCompleteAfterCrash) {
  // NWChem-style dynamic load balancing under failure: workers draw task
  // ids from the shared counter (hosted on rank 0, which never dies) and
  // write one row of a replicated result array per task. The victim dies
  // before claiming any task, so the survivors drain the whole task pool
  // and the final array must be complete and bit-exact -- puts write
  // through to replicas where the dead rank owned the primary tile, and
  // the verification reads fail over to them.
  constexpr int kN = 4;
  constexpr int kVictim = 3;  // never the counter host
  constexpr std::int64_t kTasks = 9;
  Options opts;
  opts.metrics = true;

  const RecoveryResult res = run_survivable(kN, kVictim, opts, [] {
    const int me = mpisim::rank();
    const std::int64_t dims[] = {kTasks, kN};
    const std::int64_t chunk[] = {kTasks, 1};  // one column tile per rank
    ga::GlobalArray g =
        ga::GlobalArray::create("tasks", dims, ga::ElemType::dbl, chunk,
                                ga::NodeMapping::linear,
                                ga::Resilience::replicate);
    g.zero();
    ga::AtomicCounter counter = ga::AtomicCounter::create();
    barrier();

    if (me == kVictim) {
      crash_self();
      return;
    }
    await_death(kVictim);

    const auto task_row = [](std::int64_t t) {
      std::vector<double> v(kN);
      for (std::int64_t c = 0; c < kN; ++c)
        v[static_cast<std::size_t>(c)] = static_cast<double>(t * 1000 + c);
      return v;
    };
    ga::Patch row;
    std::int64_t claimed = 0;
    for (std::int64_t t; (t = counter.next()) < kTasks;) {
      row.lo = {t, 0};
      row.hi = {t, kN - 1};
      const std::vector<double> v = task_row(t);
      g.put(row, v.data());
      ++claimed;
    }
    g.sync();

    std::vector<double> back(kN);
    for (std::int64_t t = 0; t < kTasks; ++t) {
      row.lo = {t, 0};
      row.hi = {t, kN - 1};
      std::fill(back.begin(), back.end(), -1.0);
      g.get(row, back.data());
      EXPECT_EQ(back, task_row(t)) << "task " << t;
    }
    EXPECT_GT(stats().failovers, 0u);
    // Virtual-time racing can hand every task to one worker; only ranks
    // that actually claimed work are guaranteed write-throughs.
    if (claimed > 0) EXPECT_GT(stats().replica_writes, 0u);

    counter.destroy();
    g.destroy();
  });
  expect_recovered(res, kVictim);
}

TEST(RecoveryTest, NbFlushDrainsHealthyQueuesPastDeadOwner) {
  // Survivor-side nonblocking semantics after a death: a flush covering a
  // dead owner raises Errc::crashed, but batches queued to healthy owners
  // land -- the error must not strand them, and the survivor continues.
  constexpr int kVictim = 1;
  Options opts;

  const RecoveryResult res = run_survivable(3, kVictim, opts, [] {
    const int me = mpisim::rank();
    std::vector<void*> bases = malloc_world(64);
    access_begin(bases[static_cast<std::size_t>(me)]);
    std::memset(bases[static_cast<std::size_t>(me)], 0, 64);
    access_end(bases[static_cast<std::size_t>(me)]);
    barrier();
    if (me == kVictim) {
      crash_self();
      return;
    }
    await_death(kVictim);

    if (me == 0) {
      const std::int64_t healthy = 7, doomed = 9;
      try {
        nb_put(&healthy, bases[2], sizeof healthy, 2);
        nb_put(&doomed, bases[1], sizeof doomed, 1);
        wait_all();
        ADD_FAILURE() << "flush covering a dead owner did not raise";
      } catch (const mpisim::MpiError& e) {
        EXPECT_EQ(e.code(), Errc::crashed) << e.what();
      }
      std::int64_t back = 0;
      get(bases[2], &back, sizeof back, 2);
      EXPECT_EQ(back, healthy) << "healthy owner's batch was stranded";
    }
    barrier();
    free(bases[static_cast<std::size_t>(me)]);
  });
  expect_recovered(res, kVictim);
}

TEST(RecoveryTest, ProgressPersonaParksDeadOwnerQueue) {
  // Progress-engine failure semantics: the persona's tick tries to drain a
  // queue whose owner died, parks the queue with the Errc::crashed it hit,
  // and keeps draining healthy queues. The parked error surfaces exactly
  // once -- from the first test() (round 1) or the completion callback
  // (round 2) -- after which the tickets read complete and the survivor
  // continues; no blocking wait()/flush ever runs against the dead owner.
  constexpr int kVictim = 1;
  Options opts;
  opts.progress = true;

  const RecoveryResult res = run_survivable(3, kVictim, opts, [] {
    const int me = mpisim::rank();
    std::vector<void*> bases = malloc_world(64);
    access_begin(bases[static_cast<std::size_t>(me)]);
    std::memset(bases[static_cast<std::size_t>(me)], 0, 64);
    access_end(bases[static_cast<std::size_t>(me)]);
    barrier();
    if (me == kVictim) {
      crash_self();
      return;
    }
    await_death(kVictim);

    if (me == 0) {
      // Round 1: the parked error surfaces from test(), exactly once.
      const std::int64_t healthy = 7, doomed = 9;
      Request rq_h = nb_put(&healthy, bases[2], sizeof healthy, 2);
      Request rq_d = nb_put(&doomed, bases[1], sizeof doomed, 1);
      // Tick from modeled compute: the healthy queue drains, the victim
      // queue parks. The error must NOT escape advance_compute itself.
      mpisim::clock().advance_compute(50'000.0);
      EXPECT_TRUE(test(rq_h)) << "healthy queue not drained by the tick";
      try {
        (void)test(rq_d);
        ADD_FAILURE() << "parked Errc::crashed never surfaced from test()";
      } catch (const mpisim::MpiError& e) {
        EXPECT_EQ(e.code(), Errc::crashed) << e.what();
      }
      EXPECT_TRUE(test(rq_d));  // error already delivered: reads complete
      std::int64_t back = 0;
      get(bases[2], &back, sizeof back, 2);
      EXPECT_EQ(back, healthy) << "healthy owner's batch was stranded";

      // Round 2: the parked error is delivered through on_complete.
      Request rq2 = nb_put(&doomed, bases[1], sizeof doomed, 1);
      int fired = 0;
      std::exception_ptr seen;
      on_complete(rq2, [&](std::exception_ptr err) {
        ++fired;
        seen = err;
      });
      mpisim::clock().advance_compute(50'000.0);
      EXPECT_EQ(fired, 1);
      ASSERT_NE(seen, nullptr) << "callback ran without the parked error";
      try {
        std::rethrow_exception(seen);
      } catch (const mpisim::MpiError& e) {
        EXPECT_EQ(e.code(), Errc::crashed) << e.what();
      }
      EXPECT_TRUE(test(rq2));  // consumed by the callback: no rethrow
    }
    barrier();
    free(bases[static_cast<std::size_t>(me)]);
  });
  expect_recovered(res, kVictim);
}

TEST(RecoveryTest, PGroupShrinkBuildsLiveGroup) {
  // ARMCI groups over a shrunken communicator: survivors collectively
  // rebuild the world group minus the dead member and can run collectives
  // and absolute-id translation on it.
  constexpr int kVictim = 1;
  Options opts;

  const RecoveryResult res = run_survivable(3, kVictim, opts, [] {
    if (mpisim::rank() == kVictim) {
      crash_self();
      return;
    }
    await_death(kVictim);

    const PGroup live = PGroup::shrink(PGroup::world());
    ASSERT_TRUE(live.valid());
    EXPECT_EQ(live.size(), 2);
    EXPECT_EQ(live.absolute_id(0), 0);
    EXPECT_EQ(live.absolute_id(1), 2);
    EXPECT_EQ(live.rank_of(kVictim), -1);
    EXPECT_EQ(live.absolute_id(live.rank()), mpisim::rank());
    live.barrier();
  });
  expect_recovered(res, kVictim);
}

}  // namespace
}  // namespace armci
