// Unit and property tests for derived datatypes.

#include "src/mpisim/datatype.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/mpisim/error.hpp"

namespace mpisim {
namespace {

TEST(DatatypeTest, BasicDouble) {
  Datatype t = double_type();
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.extent(), 8);
  EXPECT_TRUE(t.contiguous_layout());
  EXPECT_EQ(t.segment_count(), 1u);
  EXPECT_EQ(t.element_type(), BasicType::float64);
}

TEST(DatatypeTest, ContiguousCollapses) {
  Datatype t = Datatype::contiguous(10, double_type());
  EXPECT_EQ(t.size(), 80u);
  EXPECT_EQ(t.extent(), 80);
  EXPECT_TRUE(t.contiguous_layout());
  EXPECT_EQ(t.segment_count(), 1u);
}

TEST(DatatypeTest, VectorLayout) {
  // 3 blocks of 2 doubles, stride 4 doubles: |XX..|XX..|XX|
  Datatype t = Datatype::vector(3, 2, 4, double_type());
  EXPECT_EQ(t.size(), 48u);
  EXPECT_EQ(t.extent(), 2 * 4 * 8 + 2 * 8);
  EXPECT_FALSE(t.contiguous_layout());
  EXPECT_EQ(t.segment_count(), 3u);

  std::vector<Segment> segs = t.flatten(1);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].offset, 0);
  EXPECT_EQ(segs[0].length, 16u);
  EXPECT_EQ(segs[1].offset, 32);
  EXPECT_EQ(segs[2].offset, 64);
}

TEST(DatatypeTest, VectorWithPackedStrideIsContiguous) {
  Datatype t = Datatype::vector(4, 3, 3, double_type());
  EXPECT_TRUE(t.contiguous_layout());
  EXPECT_EQ(t.segment_count(), 1u);
  EXPECT_EQ(t.size(), 96u);
}

TEST(DatatypeTest, IndexedLayout) {
  std::vector<std::size_t> bl{2, 1, 3};
  std::vector<std::ptrdiff_t> disp{0, 4, 8};  // in elements
  Datatype t = Datatype::indexed(bl, disp, int32_type());
  EXPECT_EQ(t.size(), 6u * 4u);
  EXPECT_EQ(t.extent(), 11 * 4);
  EXPECT_EQ(t.segment_count(), 3u);
  std::vector<Segment> segs = t.flatten(1);
  EXPECT_EQ(segs[1].offset, 16);
  EXPECT_EQ(segs[1].length, 4u);
  EXPECT_EQ(segs[2].offset, 32);
  EXPECT_EQ(segs[2].length, 12u);
}

TEST(DatatypeTest, HindexedByteDisplacements) {
  std::vector<std::size_t> bl{1, 1};
  std::vector<std::ptrdiff_t> disp{3, 11};
  Datatype t = Datatype::hindexed(bl, disp, byte_type());
  std::vector<Segment> segs = t.flatten(1);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].offset, 3);
  EXPECT_EQ(segs[1].offset, 11);
  EXPECT_EQ(t.extent(), 12);
}

TEST(DatatypeTest, PackUnpackRoundTripVector) {
  Datatype t = Datatype::vector(4, 2, 5, double_type());
  std::vector<double> src(32);
  std::iota(src.begin(), src.end(), 0.0);
  std::vector<double> packed(t.size() / 8);
  t.pack(src.data(), 1, packed.data());
  EXPECT_DOUBLE_EQ(packed[0], 0.0);
  EXPECT_DOUBLE_EQ(packed[1], 1.0);
  EXPECT_DOUBLE_EQ(packed[2], 5.0);
  EXPECT_DOUBLE_EQ(packed[3], 6.0);

  std::vector<double> dst(32, -1.0);
  t.unpack(packed.data(), dst.data(), 1);
  for (std::size_t i = 0; i < 32; ++i) {
    const bool in_block = (i % 5) < 2 && i < 17;
    if (in_block) {
      EXPECT_DOUBLE_EQ(dst[i], static_cast<double>(i)) << i;
    }
    else
      EXPECT_DOUBLE_EQ(dst[i], -1.0) << i;
  }
}

TEST(DatatypeTest, SubarrayMatchesManualIndexing) {
  // 2D array 6x8 doubles, patch 3x4 at (2, 3), C order.
  const std::size_t sizes[] = {6, 8};
  const std::size_t subsizes[] = {3, 4};
  const std::size_t starts[] = {2, 3};
  Datatype t = Datatype::subarray(sizes, subsizes, starts, double_type());
  EXPECT_EQ(t.size(), 3u * 4u * 8u);
  EXPECT_EQ(t.segment_count(), 3u);

  std::vector<double> arr(48);
  std::iota(arr.begin(), arr.end(), 0.0);
  std::vector<double> packed(12);
  t.pack(arr.data(), 1, packed.data());
  std::size_t k = 0;
  for (std::size_t i = 2; i < 5; ++i)
    for (std::size_t j = 3; j < 7; ++j)
      EXPECT_DOUBLE_EQ(packed[k++], arr[i * 8 + j]);
}

TEST(DatatypeTest, Subarray3D) {
  const std::size_t sizes[] = {4, 5, 6};
  const std::size_t subsizes[] = {2, 3, 2};
  const std::size_t starts[] = {1, 1, 3};
  Datatype t = Datatype::subarray(sizes, subsizes, starts, int32_type());
  EXPECT_EQ(t.size(), 2u * 3u * 2u * 4u);
  EXPECT_EQ(t.segment_count(), 6u);

  std::vector<std::int32_t> arr(120);
  std::iota(arr.begin(), arr.end(), 0);
  std::vector<std::int32_t> packed(12);
  t.pack(arr.data(), 1, packed.data());
  std::size_t k = 0;
  for (std::size_t i = 1; i < 3; ++i)
    for (std::size_t j = 1; j < 4; ++j)
      for (std::size_t l = 3; l < 5; ++l)
        EXPECT_EQ(packed[k++], arr[i * 30 + j * 6 + l]);
}

TEST(DatatypeTest, SubarrayFullArrayIsContiguous) {
  const std::size_t sizes[] = {4, 6};
  const std::size_t subsizes[] = {4, 6};
  const std::size_t starts[] = {0, 0};
  Datatype t = Datatype::subarray(sizes, subsizes, starts, double_type());
  EXPECT_TRUE(t.contiguous_layout());
  EXPECT_EQ(t.size(), 24u * 8u);
}

TEST(DatatypeTest, SubarrayOutOfBoundsThrows) {
  const std::size_t sizes[] = {4, 4};
  const std::size_t subsizes[] = {2, 3};
  const std::size_t starts[] = {3, 0};
  EXPECT_THROW(Datatype::subarray(sizes, subsizes, starts, double_type()),
               MpiError);
}

TEST(DatatypeTest, MultipleInstancesAdvanceByExtent) {
  Datatype t = Datatype::vector(2, 1, 2, double_type());
  // extent = (2-1)*16 + 8 = 24 bytes; instance 1 starts at 24, and its
  // first block [24, 32) merges with instance 0's trailing block [16, 24).
  EXPECT_EQ(t.extent(), 24);
  std::vector<Segment> segs = t.flatten(2);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].offset, 0);
  EXPECT_EQ(segs[0].length, 8u);
  EXPECT_EQ(segs[1].offset, 16);
  EXPECT_EQ(segs[1].length, 16u);
  EXPECT_EQ(segs[2].offset, 40);
  EXPECT_EQ(segs[2].length, 8u);
}

TEST(DatatypeTest, NestedVectorOfVector) {
  Datatype inner = Datatype::vector(2, 1, 3, double_type());  // 2 segs
  Datatype outer = Datatype::hvector(3, 1, 64, inner);
  EXPECT_EQ(outer.segment_count(), 6u);
  EXPECT_EQ(outer.size(), 3u * 2u * 8u);
}

TEST(DatatypeTest, ZeroCountThrows) {
  EXPECT_THROW(Datatype::contiguous(0, double_type()), MpiError);
  EXPECT_THROW(Datatype::vector(1, 0, 1, double_type()), MpiError);
}

TEST(DatatypeTest, IndexedMismatchedSpansThrow) {
  std::vector<std::size_t> bl{1, 2};
  std::vector<std::ptrdiff_t> disp{0};
  EXPECT_THROW(Datatype::indexed(bl, disp, byte_type()), MpiError);
}

// Property: for any subarray, flattened segments are disjoint, ordered,
// and their total length equals size().
class SubarrayPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SubarrayPropertyTest, SegmentsDisjointAndComplete) {
  auto [rows, cols, sr, sc] = GetParam();
  const std::size_t sizes[] = {static_cast<std::size_t>(rows),
                               static_cast<std::size_t>(cols)};
  const std::size_t subsizes[] = {static_cast<std::size_t>(rows - sr),
                                  static_cast<std::size_t>(cols - sc)};
  const std::size_t starts[] = {static_cast<std::size_t>(sr),
                                static_cast<std::size_t>(sc)};
  Datatype t = Datatype::subarray(sizes, subsizes, starts, double_type());

  std::vector<Segment> segs = t.flatten(1);
  std::size_t total = 0;
  std::ptrdiff_t prev_end = -1;
  for (const Segment& s : segs) {
    EXPECT_GT(s.offset, prev_end);
    prev_end = s.offset + static_cast<std::ptrdiff_t>(s.length) - 1;
    total += s.length;
  }
  EXPECT_EQ(total, t.size());
  EXPECT_LE(prev_end, t.extent() - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SubarrayPropertyTest,
    ::testing::Combine(::testing::Values(3, 8, 17), ::testing::Values(4, 9),
                       ::testing::Values(0, 1, 2), ::testing::Values(0, 1, 3)));

}  // namespace
}  // namespace mpisim
