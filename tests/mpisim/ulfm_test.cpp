// Survivable-failure mode and the ULFM-style recovery primitives: a
// scheduled crash marks the victim dead instead of aborting the run, blocked
// peers observe Errc::crashed after the detection period, collectives
// complete over the live members, and the layers above recover through
// revoke()/shrink()/agree()/failure_ack(). Fault and recovery actions are
// first-class trace events (TraceCat::fault).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "src/mpisim/comm.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/trace.hpp"

namespace mpisim {
namespace {

constexpr double kCrashAt = 1e6;  // victims advance past this, then die

Config survivable_cfg(int nranks, std::vector<RankCrashSpec> crashes) {
  Config cfg;
  cfg.nranks = nranks;
  cfg.platform = Platform::infiniband;
  cfg.fault.seed = 7;
  cfg.fault.survivable = true;
  cfg.fault.crashes = std::move(crashes);
  return cfg;
}

/// Die at the next fault point: push the clock past the scheduled crash
/// time and enter a faultable operation (collective entry). The barrier's
/// fault point fires before the rendezvous state is touched, so the round
/// never sees a half-arrived victim.
[[noreturn]] void crash_now() {
  clock().advance(2 * kCrashAt);
  world().barrier();
  std::abort();  // unreachable: the fault point must throw
}

/// Spin (host time) until the core has declared \p victim dead. The caller
/// is not blocked in wait(), so quiescence detection is unaffected.
void await_death(int victim) {
  while (!ctx().core().is_failed(victim)) std::this_thread::yield();
}

TEST(SurvivableTest, CrashMarksVictimDeadAndLiveRanksComplete) {
  const int victim = 2;
  int completed = 0;
  run(survivable_cfg(4, {{victim, kCrashAt}}), [&] {
    if (rank() == victim) crash_now();
    await_death(victim);
    EXPECT_TRUE(ctx().core().is_failed(victim));
    EXPECT_FALSE(ctx().core().is_failed(rank()));
    EXPECT_EQ(ctx().core().failed_ranks(), std::vector<int>{victim});
    EXPECT_TRUE(world().is_failed(victim));

    // Collectives complete over the live members: the dead rank's slot is
    // excused and its (stale) buffers are never read.
    world().barrier();
    std::int32_t in = 1, out = 0;
    world().allreduce(&in, &out, 1, BasicType::int32, Op::sum);
    EXPECT_EQ(out, 3);

    std::unique_lock lk(ctx().core().mu());
    ++completed;
  });
  EXPECT_EQ(completed, 3);
}

TEST(SurvivableTest, SendAndRecvOnDeadPeerRaiseCrashed) {
  const int victim = 1;
  run(survivable_cfg(3, {{victim, kCrashAt}}), [&] {
    if (rank() == victim) crash_now();
    await_death(victim);
    if (rank() == 0) {
      char c = 0;
      try {
        world().recv(&c, 1, victim, 5);
        ADD_FAILURE() << "recv from a dead rank completed";
      } catch (const MpiError& e) {
        EXPECT_EQ(e.code(), Errc::crashed) << e.what();
      }
      // The detection-latency gauge was stamped by the observation, and the
      // observer's clock sits at (or past) the detector bound.
      EXPECT_GE(ctx().last_detect_latency_ns, 0.0);
      try {
        world().send(&c, 1, victim, 5);
        ADD_FAILURE() << "send to a dead rank completed";
      } catch (const MpiError& e) {
        EXPECT_EQ(e.code(), Errc::crashed) << e.what();
      }
    }
    world().barrier();
  });
}

TEST(SurvivableTest, AnySourceRecvRaisesOncePerEpochUntilAcked) {
  const int victim = 2;
  run(survivable_cfg(3, {{victim, kCrashAt}}), [&] {
    if (rank() == victim) crash_now();
    await_death(victim);
    // Rank 1 must not send until rank 0 has provably taken the
    // unacked-failure branch: match-first wildcard semantics (load-bearing
    // for the mutex token protocol) mean an already-delivered message from
    // a live sender completes the recv normally, so an unsynchronized send
    // would race the raise.
    if (rank() == 1) {
      char go = 0;
      world().recv(&go, 1, 0, 10);
      const std::int32_t v = 42;
      world().send(&v, sizeof v, 0, 9);
    }
    if (rank() == 0) {
      // ULFM failure-notification semantics: a wildcard receive must raise
      // Errc::crashed for the unacknowledged death (the awaited sender
      // might be the dead one) ...
      std::int32_t v = 0;
      try {
        world().recv(&v, sizeof v, kAnySource, 9);
        ADD_FAILURE() << "wildcard recv ignored an unacked failure";
      } catch (const MpiError& e) {
        EXPECT_EQ(e.code(), Errc::crashed) << e.what();
      }
      // ... and complete normally against live senders once acknowledged.
      world().failure_ack();
      const char go = 1;
      world().send(&go, 1, 1, 10);
      const Status st = world().recv(&v, sizeof v, kAnySource, 9);
      EXPECT_EQ(v, 42);
      EXPECT_EQ(st.source, 1);
    }
    world().barrier();
  });
}

TEST(SurvivableTest, RootedCollectiveWithDeadRootRaisesCrashed) {
  const int victim = 1;
  run(survivable_cfg(3, {{victim, kCrashAt}}), [&] {
    if (rank() == victim) crash_now();
    await_death(victim);
    // ULFM: a collective that depends on a failed process must fail on the
    // survivors -- silently completing would hand them stale buffers.
    std::int32_t v = 7;
    try {
      world().bcast(&v, sizeof v, victim);
      ADD_FAILURE() << "bcast from a dead root completed";
    } catch (const MpiError& e) {
      EXPECT_EQ(e.code(), Errc::crashed) << e.what();
    }
    EXPECT_EQ(v, 7);  // the survivor's buffer is untouched, and it knows
    std::int32_t out = -1;
    try {
      world().reduce(&v, &out, 1, BasicType::int32, Op::sum, victim);
      ADD_FAILURE() << "reduce into a dead root completed";
    } catch (const MpiError& e) {
      EXPECT_EQ(e.code(), Errc::crashed) << e.what();
    }
    EXPECT_EQ(out, -1);
    // Rooted collectives with a live root still complete over survivors.
    std::int32_t b = rank() == 0 ? 33 : 0;
    world().bcast(&b, sizeof b, 0);
    EXPECT_EQ(b, 33);
    world().barrier();
  });
}

TEST(SurvivableTest, RevokeWakesBlockedReceiversAndIsSticky) {
  Config cfg = survivable_cfg(2, {});
  run(cfg, [] {
    Comm c = world().dup();
    if (rank() == 1) {
      char b = 0;
      try {
        c.recv(&b, 1, 0, 3);  // no matching send ever arrives
        ADD_FAILURE() << "recv on a revoked communicator completed";
      } catch (const MpiError& e) {
        EXPECT_EQ(e.code(), Errc::revoked) << e.what();
      }
      // Sticky: later entries fail immediately too.
      try {
        c.send(&b, 1, 0, 3);
        ADD_FAILURE() << "send on a revoked communicator completed";
      } catch (const MpiError& e) {
        EXPECT_EQ(e.code(), Errc::revoked) << e.what();
      }
    } else {
      clock().advance(1e5);  // let rank 1 block first (virtual ordering)
      c.revoke();
    }
    // The world communicator is unaffected by the dup's revocation.
    world().barrier();
    // shrink() works on a revoked communicator; with no deaths it simply
    // rebuilds the same membership under a fresh id.
    Comm fresh = c.shrink();
    EXPECT_EQ(fresh.size(), 2);
    fresh.barrier();
  });
}

TEST(SurvivableTest, ShrinkBuildsLiveCommAndAgreeCompletes) {
  const int victim = 1;
  run(survivable_cfg(4, {{victim, kCrashAt}}), [&] {
    if (rank() == victim) crash_now();
    await_death(victim);

    Comm s = world().shrink();
    EXPECT_EQ(s.size(), 3);
    // Survivors keep their relative order: world ranks {0, 2, 3}.
    EXPECT_EQ(s.group().world_rank(0), 0);
    EXPECT_EQ(s.group().world_rank(1), 2);
    EXPECT_EQ(s.group().world_rank(2), 3);
    EXPECT_EQ(s.world_rank(s.rank()), rank());
    s.barrier();
    std::int32_t in = rank(), out = -1;
    s.allreduce(&in, &out, 1, BasicType::int32, Op::sum);
    EXPECT_EQ(out, 0 + 2 + 3);

    // agree() is the AND over the live members, completing despite the
    // death; it acknowledges the failure as a side effect.
    EXPECT_TRUE(world().agree(true));
    EXPECT_FALSE(world().agree(rank() != 0));
  });
}

TEST(SurvivableTest, FaultEventsAreFirstClassTraceEvents) {
  const int victim = 2;
  run(survivable_cfg(3, {{victim, kCrashAt}}), [&] {
    tracer().enable(1024);
    world().barrier();  // everyone's tracer is live before the crash
    if (rank() == victim) crash_now();
    await_death(victim);

    // Observing the death emits a fault.detect pair on the observer.
    char c = 0;
    try {
      world().recv(&c, 1, victim, 4);
      ADD_FAILURE() << "recv from a dead rank completed";
    } catch (const MpiError& e) {
      EXPECT_EQ(e.code(), Errc::crashed) << e.what();
    }
    // Shrinking emits a fault.shrink pair on every survivor.
    Comm s = world().shrink();
    EXPECT_EQ(s.size(), 2);
    if (rank() == 0) s.revoke();  // and revocation a fault.revoke pair

    const auto count = [](const std::vector<TraceEvent>& ev,
                          const char* name) {
      int begins = 0, ends = 0;
      for (const TraceEvent& e : ev) {
        if (std::strcmp(e.name, name) != 0) continue;
        EXPECT_EQ(e.cat, TraceCat::fault) << name;
        (e.phase == 'B' ? begins : ends) += 1;
      }
      EXPECT_EQ(begins, ends) << name;
      return begins;
    };
    const std::vector<TraceEvent> mine = tracer().events();
    EXPECT_GE(count(mine, "fault.detect"), 1) << "rank " << rank();
    EXPECT_EQ(count(mine, "fault.shrink"), 1) << "rank " << rank();
    if (rank() == 0) EXPECT_EQ(count(mine, "fault.revoke"), 1);
    // The victim's ring holds its crash marker. Its thread died before any
    // survivor could observe the death, so this read is race-free.
    const std::vector<TraceEvent> victims =
        ctx().core().rank_ctx(victim).tracer().events();
    EXPECT_EQ(count(victims, "fault.crash"), 1);
  });
}

TEST(SurvivableTest, OffByDefaultCrashStillAbortsTheRun) {
  // Without FaultPlan::survivable the pre-existing semantics hold: the
  // victim's escaped exception aborts every peer.
  Config cfg;
  cfg.nranks = 3;
  cfg.platform = Platform::infiniband;
  cfg.fault.seed = 7;
  cfg.fault.crashes = {{1, kCrashAt}};
  int aborted = 0;
  try {
    run(cfg, [&] {
      if (rank() == 1) {
        clock().advance(2 * kCrashAt);
        world().barrier();
      }
      try {
        char c = 0;
        world().recv(&c, 1, 1, 8);  // never satisfied: woken by the abort
      } catch (const MpiError& e) {
        if (e.code() == Errc::aborted) {
          std::unique_lock lk(ctx().core().mu());
          ++aborted;
        }
        throw;
      }
    });
    FAIL() << "run() must rethrow the victim's crash";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::crashed) << e.what();
  }
  EXPECT_EQ(aborted, 2);
}

TEST(SurvivableTest, AnySourceIrecvWaitRaisesOncePerEpochUntilAcked) {
  const int victim = 2;
  run(survivable_cfg(3, {{victim, kCrashAt}}), [&] {
    if (rank() == victim) crash_now();
    await_death(victim);
    // Same go-message gating as the blocking-recv regression: rank 1 must
    // not send until rank 0 has provably taken the unacked-failure branch,
    // or the already-delivered message would complete the wait normally.
    if (rank() == 1) {
      char go = 0;
      world().recv(&go, 1, 0, 10);
      const std::int32_t v = 42;
      world().send(&v, sizeof v, 0, 9);
    }
    if (rank() == 0) {
      // A wildcard *posted* receive must surface the unacknowledged death
      // through wait() -- same Errc as the blocking form, instead of
      // blocking forever on a sender that can never arrive.
      std::int32_t v = 0;
      {
        Comm::Request req = world().irecv(&v, sizeof v, kAnySource, 9);
        try {
          req.wait();
          ADD_FAILURE() << "wildcard irecv wait ignored an unacked failure";
        } catch (const MpiError& e) {
          EXPECT_EQ(e.code(), Errc::crashed) << e.what();
        }
      }
      // ... and complete normally against live senders once acknowledged.
      world().failure_ack();
      const char go = 1;
      world().send(&go, 1, 1, 10);
      Comm::Request req = world().irecv(&v, sizeof v, kAnySource, 9);
      Status st;
      req.wait(&st);
      EXPECT_EQ(v, 42);
      EXPECT_EQ(st.source, 1);
    }
    world().barrier();
  });
}

TEST(SurvivableTest, SpecificSourceIrecvWaitOnDeadPeerRaisesCrashed) {
  const int victim = 1;
  run(survivable_cfg(3, {{victim, kCrashAt}}), [&] {
    if (rank() == victim) crash_now();
    await_death(victim);
    if (rank() == 0) {
      // A receive posted at a now-dead specific source can never be
      // matched; wait() must surface the death instead of hanging.
      char c = 0;
      Comm::Request req = world().irecv(&c, 1, victim, 5);
      try {
        req.wait();
        ADD_FAILURE() << "irecv wait on a dead sender completed";
      } catch (const MpiError& e) {
        EXPECT_EQ(e.code(), Errc::crashed) << e.what();
      }
      // test() after the surfaced failure reads complete, not a re-raise.
      EXPECT_TRUE(req.test());
    }
    world().barrier();
  });
}

}  // namespace
}  // namespace mpisim
