// Tests for virtual-time pacing of dynamically load-balanced loops.

#include "src/mpisim/pacer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/mpisim/comm.hpp"
#include "src/mpisim/runtime.hpp"

namespace mpisim {
namespace {

TEST(PacerTest, EnterIsARendezvous) {
  // A rank that calls enter() must not proceed until everyone entered; we
  // detect violations by counting entered ranks at first pace().
  std::atomic<int> entered{0};
  run(8, Platform::ideal, [&] {
    Pacer p = Pacer::create(world());
    entered.fetch_add(1);
    p.enter();
    EXPECT_EQ(entered.load(), 8);  // all in before anyone returns
    p.pace();
    p.leave();
  });
}

TEST(PacerTest, ClaimsFollowVirtualClocks) {
  // With uniform virtual task costs, a shared counter paced by virtual
  // time must distribute tasks evenly regardless of host scheduling.
  std::vector<int> counts(4, 0);
  run(4, Platform::ideal, [&] {
    Pacer p = Pacer::create(world());
    // A crude shared counter (test-only; ARMCI provides the real one).
    static std::atomic<int> next{0};
    if (rank() == 0) next = 0;
    world().barrier();
    p.enter();
    int mine = 0;
    while (true) {
      p.pace();
      const int t = next.fetch_add(1);
      if (t >= 40) break;
      clock().advance(1000.0);  // uniform virtual task cost
      ++mine;
    }
    p.leave();
    counts[static_cast<std::size_t>(rank())] = mine;
  });
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(PacerTest, UnevenCostsShiftClaims) {
  // Rank 0's tasks are 9x more expensive in virtual time; pacing must give
  // it roughly 1/9 the tasks of the cheap ranks.
  std::vector<int> counts(3, 0);
  run(3, Platform::ideal, [&] {
    Pacer p = Pacer::create(world());
    static std::atomic<int> next{0};
    if (rank() == 0) next = 0;
    world().barrier();
    p.enter();
    int mine = 0;
    while (true) {
      p.pace();
      const int t = next.fetch_add(1);
      if (t >= 57) break;
      clock().advance(rank() == 0 ? 9000.0 : 1000.0);
      ++mine;
    }
    p.leave();
    counts[static_cast<std::size_t>(rank())] = mine;
  });
  EXPECT_LT(counts[0], counts[1] / 2);
  EXPECT_NEAR(counts[1], counts[2], 3);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 57);
}

TEST(PacerTest, LeaveReleasesStragglers) {
  // A rank that leaves with a low clock must not block the others forever.
  run(4, Platform::ideal, [&] {
    Pacer p = Pacer::create(world());
    p.enter();
    if (rank() == 0) {
      p.leave();  // leaves immediately at clock ~0
    } else {
      clock().advance(1e9);
      p.pace();  // would deadlock if rank 0 still counted as the minimum
      p.leave();
    }
    world().barrier();
  });
}

TEST(PacerTest, WindowAllowsBoundedSkew) {
  run(2, Platform::ideal, [&] {
    Pacer p = Pacer::create(world());
    p.enter();
    if (rank() == 0) clock().advance(500.0);
    // A window larger than the skew never blocks.
    p.pace(1000.0);
    p.leave();
    world().barrier();
  });
}

TEST(PacerTest, ReusableAcrossPhases) {
  run(4, Platform::ideal, [&] {
    Pacer p = Pacer::create(world());
    for (int phase = 0; phase < 3; ++phase) {
      p.enter();
      p.pace();
      clock().advance(100.0 * (rank() + 1));
      p.leave();
      world().barrier();
    }
  });
}

}  // namespace
}  // namespace mpisim
