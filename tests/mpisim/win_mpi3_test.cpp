// Tests for the MPI-3 RMA extensions (paper §VIII-B): epochless passive
// mode (lock_all / flush) and atomic read-modify-write operations.

#include <gtest/gtest.h>

#include <vector>

#include "src/mpisim/runtime.hpp"
#include "src/mpisim/win.hpp"

namespace mpisim {
namespace {

TEST(WinMpi3Test, LockAllOpensEpochsEverywhere) {
  run(4, Platform::ideal, [] {
    std::vector<double> mem(4, static_cast<double>(rank()));
    Win win = Win::create(mem.data(), 32, world());
    world().barrier();
    win.lock_all();
    // Read every rank's first element without per-target locks.
    for (int t = 0; t < 4; ++t) {
      double v = -1;
      win.get(&v, sizeof v, t, 0);
      EXPECT_DOUBLE_EQ(v, static_cast<double>(t));
    }
    win.flush_all();
    win.unlock_all();
    world().barrier();
    win.free();
  });
}

TEST(WinMpi3Test, LockAllThenLockIsDoubleLock) {
  try {
    run(2, Platform::ideal, [] {
      std::vector<double> mem(4);
      Win win = Win::create(mem.data(), 32, world());
      if (rank() == 0) {
        win.lock_all();
        win.lock(LockType::exclusive, 1);
      }
      world().barrier();
    });
    FAIL() << "expected MpiError";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::double_lock);
  }
}

TEST(WinMpi3Test, UnlockAllWithoutLockAllThrows) {
  try {
    run(2, Platform::ideal, [] {
      std::vector<double> mem(4);
      Win win = Win::create(mem.data(), 32, world());
      if (rank() == 0) win.unlock_all();
      world().barrier();
    });
    FAIL() << "expected MpiError";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::not_locked);
  }
}

TEST(WinMpi3Test, FlushRequiresAnEpoch) {
  try {
    run(2, Platform::ideal, [] {
      std::vector<double> mem(4);
      Win win = Win::create(mem.data(), 32, world());
      if (rank() == 0) win.flush(1);
      world().barrier();
    });
    FAIL() << "expected MpiError";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::no_epoch);
  }
}

TEST(WinMpi3Test, AccumulateBasedPutsUnderLockAll) {
  // The ARMCI-MPI3 recipe: put == accumulate(REPLACE), usable concurrently
  // from all origins under shared lock_all epochs.
  run(8, Platform::ideal, [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), 64, world());
    world().barrier();
    win.lock_all();
    const Datatype d = double_type();
    const double mine = static_cast<double>(rank() + 1);
    // Each rank writes its own slot of rank 0 via accumulate(replace).
    win.accumulate(&mine, 1, d, 0, static_cast<std::size_t>(rank()) * 8, 1,
                   d, Op::replace);
    win.flush(0);
    win.unlock_all();
    world().barrier();
    if (rank() == 0)
      for (int r = 0; r < 8; ++r)
        EXPECT_DOUBLE_EQ(mem[static_cast<std::size_t>(r)], r + 1.0);
    win.free();
  });
}

TEST(WinMpi3Test, FetchAndOpIsAtomic) {
  run(8, Platform::ideal, [] {
    std::vector<std::int64_t> mem(1, 0);
    Win win = Win::create(mem.data(), 8, world());
    world().barrier();
    win.lock_all();
    std::set<std::int64_t> seen;
    const std::int64_t one = 1;
    for (int i = 0; i < 10; ++i) {
      std::int64_t old = -1;
      win.fetch_and_op(&one, &old, BasicType::int64, 0, 0, Op::sum);
      EXPECT_TRUE(seen.insert(old).second);  // my fetches are distinct
    }
    win.unlock_all();
    world().barrier();
    if (rank() == 0) { EXPECT_EQ(mem[0], 80); }
    win.free();
  });
}

TEST(WinMpi3Test, FetchAndOpReplaceSwaps) {
  run(2, Platform::ideal, [] {
    std::vector<std::int64_t> mem(1, 7);
    Win win = Win::create(mem.data(), 8, world());
    world().barrier();
    if (rank() == 1) {
      win.lock_all();
      std::int64_t mine = 42, old = 0;
      win.fetch_and_op(&mine, &old, BasicType::int64, 0, 0, Op::replace);
      EXPECT_EQ(old, 7);
      win.unlock_all();
    }
    world().barrier();
    if (rank() == 0) { EXPECT_EQ(mem[0], 42); }
    win.free();
  });
}

TEST(WinMpi3Test, NoOpFetchReadsAtomically) {
  run(2, Platform::ideal, [] {
    std::vector<std::int64_t> mem(1, 99);
    Win win = Win::create(mem.data(), 8, world());
    world().barrier();
    if (rank() == 1) {
      win.lock_all();
      std::int64_t old = 0;
      win.fetch_and_op(nullptr, &old, BasicType::int64, 0, 0, Op::no_op);
      EXPECT_EQ(old, 99);
      win.unlock_all();
    }
    world().barrier();
    if (rank() == 0) { EXPECT_EQ(mem[0], 99); }
    win.free();
  });
}

TEST(WinMpi3Test, CompareAndSwapOnlyOneWinner) {
  run(8, Platform::ideal, [] {
    std::vector<std::int64_t> mem(1, 0);
    Win win = Win::create(mem.data(), 8, world());
    world().barrier();
    win.lock_all();
    const std::int64_t zero = 0;
    const std::int64_t mine = rank() + 1;
    std::int64_t old = -1;
    win.compare_and_swap(&mine, &zero, &old, BasicType::int64, 0, 0);
    const int won = old == 0 ? 1 : 0;
    win.unlock_all();
    world().barrier();
    std::int64_t winners = 0;
    const std::int64_t w = won;
    world().allreduce(&w, &winners, 1, BasicType::int64, Op::sum);
    EXPECT_EQ(winners, 1);
    if (rank() == 0) {
      EXPECT_GE(mem[0], 1);
      EXPECT_LE(mem[0], 8);
    }
    win.free();
  });
}

TEST(WinMpi3Test, ConflictsAreUndefinedNotErroneousUnderLockAll) {
  // Under MPI-2 epochs this put/get overlap raises conflicting_access; the
  // MPI-3 lock_all epoch relaxes it to undefined -- no error.
  run(2, Platform::ideal, [] {
    std::vector<double> mem(4, 0.0);
    Win win = Win::create(mem.data(), 32, world());
    world().barrier();
    if (rank() == 0) {
      win.lock_all();
      double v[2] = {1, 2};
      double d[2];
      win.put(v, 16, 1, 0);
      win.get(d, 16, 1, 8);  // overlaps the put: undefined, not an error
      win.flush(1);
      win.unlock_all();
    }
    world().barrier();
    win.free();
  });
}

TEST(WinMpi3Test, FlushResetsLatencyPipelining) {
  run(2, Platform::cray_xt5, [] {
    std::vector<double> mem(64, 0.0);
    Win win = Win::create(mem.data(), 512, world());
    world().barrier();
    if (rank() == 0) {
      win.lock_all();
      double v = 1.0;
      win.put(&v, 8, 1, 0);
      const double t0 = clock().now_ns();
      win.put(&v, 8, 1, 16);  // pipelined: no wire latency
      const double pipelined = clock().now_ns() - t0;
      win.flush(1);
      const double t1 = clock().now_ns();
      win.put(&v, 8, 1, 32);  // first op after flush pays latency again
      const double after_flush = clock().now_ns() - t1;
      EXPECT_GT(after_flush, pipelined);
      win.unlock_all();
    }
    world().barrier();
    win.free();
  });
}

TEST(WinMpi3Test, FlushWithNothingOutstandingIsFree) {
  run(2, Platform::infiniband, [] {
    std::vector<double> mem(4, 0.0);
    Win win = Win::create(mem.data(), 32, world());
    world().barrier();
    if (rank() == 0) {
      win.lock_all();
      const double t0 = clock().now_ns();
      win.flush(1);
      EXPECT_EQ(clock().now_ns(), t0);
      win.unlock_all();
    }
    world().barrier();
    win.free();
  });
}

TEST(WinMpi3Test, LockAllCoexistsWithExclusiveFromOthers) {
  // Rank 0 holds lock_all (shared everywhere); rank 1's exclusive lock on
  // rank 2 must wait for nothing incompatible once 0 releases -- exercise
  // the waiter queue interplay without deadlock.
  run(3, Platform::ideal, [] {
    std::vector<double> mem(4, 0.0);
    Win win = Win::create(mem.data(), 32, world());
    world().barrier();
    if (rank() == 0) {
      win.lock_all();
      double v = 5.0;
      win.put(&v, 8, 2, 0);
      win.flush(2);
      win.unlock_all();
    }
    world().barrier();
    if (rank() == 1) {
      win.lock(LockType::exclusive, 2);
      double v = 0.0;
      win.get(&v, 8, 2, 0);
      win.unlock(2);
      EXPECT_DOUBLE_EQ(v, 5.0);
    }
    world().barrier();
    win.free();
  });
}

}  // namespace
}  // namespace mpisim
