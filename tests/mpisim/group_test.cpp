// Unit tests for process groups.

#include "src/mpisim/group.hpp"

#include <gtest/gtest.h>

#include <array>

#include "src/mpisim/error.hpp"

namespace mpisim {
namespace {

TEST(GroupTest, RangeConstruction) {
  Group g = Group::range(2, 6);
  EXPECT_EQ(g.size(), 4);
  EXPECT_EQ(g.world_rank(0), 2);
  EXPECT_EQ(g.world_rank(3), 5);
}

TEST(GroupTest, RankOfWorldRoundTrip) {
  Group g({7, 3, 9, 0});
  for (int r = 0; r < g.size(); ++r)
    EXPECT_EQ(g.rank_of_world(g.world_rank(r)), r);
  EXPECT_EQ(g.rank_of_world(42), -1);
}

TEST(GroupTest, ContainsMembership) {
  Group g({1, 4});
  EXPECT_TRUE(g.contains(1));
  EXPECT_TRUE(g.contains(4));
  EXPECT_FALSE(g.contains(2));
}

TEST(GroupTest, DuplicateRankThrows) {
  EXPECT_THROW(Group({1, 2, 1}), MpiError);
}

TEST(GroupTest, OutOfRangeThrows) {
  Group g({0, 1});
  EXPECT_THROW(g.world_rank(2), MpiError);
  EXPECT_THROW(g.world_rank(-1), MpiError);
}

TEST(GroupTest, InclPreservesOrder) {
  Group g({10, 20, 30, 40});
  std::array<int, 2> pick{3, 1};
  Group sub = g.incl(pick);
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.world_rank(0), 40);
  EXPECT_EQ(sub.world_rank(1), 20);
}

TEST(GroupTest, ExclRemoves) {
  Group g({10, 20, 30, 40});
  std::array<int, 2> drop{0, 2};
  Group sub = g.excl(drop);
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.world_rank(0), 20);
  EXPECT_EQ(sub.world_rank(1), 40);
}

TEST(GroupTest, UnionOrdering) {
  Group a({1, 2, 3});
  Group b({3, 4, 2, 5});
  Group u = a.union_with(b);
  EXPECT_EQ(u.members(), (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(GroupTest, Intersection) {
  Group a({1, 2, 3, 4});
  Group b({4, 2, 9});
  Group i = a.intersection(b);
  EXPECT_EQ(i.members(), (std::vector<int>{2, 4}));
}

TEST(GroupTest, EmptyGroup) {
  Group g;
  EXPECT_EQ(g.size(), 0);
  EXPECT_FALSE(g.contains(0));
}

TEST(GroupTest, EqualityIsOrderSensitive) {
  EXPECT_EQ(Group({1, 2}), Group({1, 2}));
  EXPECT_FALSE(Group({1, 2}) == Group({2, 1}));
}

}  // namespace
}  // namespace mpisim
