// Tests for the deterministic fault-injection subsystem (fault.hpp) and the
// runtime machinery it drives: failure propagation to blocked peers,
// deadlock detection, and virtual-time wait deadlines.

#include "src/mpisim/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/mpisim/comm.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/win.hpp"

namespace mpisim {
namespace {

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(FaultInjectorTest, DisabledPlanInjectsNothing) {
  FaultPlan plan;  // default: disabled
  EXPECT_FALSE(plan.enabled());
  FaultInjector fi;
  fi.configure(plan, 0);
  SimClock clock;
  EXPECT_NO_THROW(fi.fault_point(clock));
  EXPECT_NO_THROW(fi.maybe_transient(clock, "test"));
  EXPECT_DOUBLE_EQ(fi.draw_delivery_delay_ns(), 0.0);
  EXPECT_DOUBLE_EQ(fi.draw_lock_stall_ns(), 0.0);
  EXPECT_EQ(fi.transients_raised(), 0u);
  EXPECT_DOUBLE_EQ(clock.now_ns(), 0.0);
}

TEST(FaultInjectorTest, SameSeedSameRankReplaysIdenticalDraws) {
  FaultPlan plan;
  plan.seed = 42;
  plan.delay_rate = 0.5;
  plan.delay_ns = 100.0;
  plan.lock_stall_rate = 0.5;
  plan.lock_stall_ns = 250.0;

  FaultInjector a, b;
  a.configure(plan, 2);
  b.configure(plan, 2);
  for (int i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(a.draw_delivery_delay_ns(), b.draw_delivery_delay_ns());
    EXPECT_DOUBLE_EQ(a.draw_lock_stall_ns(), b.draw_lock_stall_ns());
  }
}

TEST(FaultInjectorTest, RankStreamsAreDecorrelated) {
  FaultPlan plan;
  plan.seed = 42;
  plan.delay_rate = 0.5;
  plan.delay_ns = 100.0;

  FaultInjector a, b;
  a.configure(plan, 0);
  b.configure(plan, 1);
  bool differed = false;
  for (int i = 0; i < 64 && !differed; ++i)
    differed = a.draw_delivery_delay_ns() != b.draw_delivery_delay_ns();
  EXPECT_TRUE(differed) << "rank 0 and rank 1 replayed the same fault stream";
}

TEST(FaultInjectorTest, TransientBurstFailsNTimesAndChargesStall) {
  FaultPlan plan;
  plan.seed = 9;
  plan.transient.rate = 1.0;
  plan.transient.fail_count = 3;
  plan.transient.stall_ns = 50.0;

  FaultInjector fi;
  fi.configure(plan, 0);
  SimClock clock;
  for (int i = 0; i < 3; ++i) {
    try {
      fi.maybe_transient(clock, "unit.site");
      FAIL() << "expected a transient fault on attempt " << i;
    } catch (const MpiError& e) {
      EXPECT_EQ(e.code(), Errc::transient);
      EXPECT_TRUE(contains(e.what(), "[transient]")) << e.what();
      EXPECT_TRUE(contains(e.what(), "unit.site")) << e.what();
    }
  }
  EXPECT_EQ(fi.transients_raised(), 3u);
  EXPECT_DOUBLE_EQ(clock.now_ns(), 150.0);
}

TEST(FaultRuntimeTest, ScheduledCrashAbortsEveryBlockedSurvivor) {
  enum class Outcome { none, completed, crashed, aborted, other };
  std::vector<Outcome> out(3, Outcome::none);

  Config cfg;
  cfg.nranks = 3;
  cfg.platform = Platform::infiniband;
  cfg.fault.seed = 1;
  cfg.fault.crashes = {{1, 2000.0}};

  try {
    run(cfg, [&] {
      const int me = rank();
      try {
        for (int i = 0; i < 50; ++i) world().barrier();
        out[static_cast<std::size_t>(me)] = Outcome::completed;
      } catch (const MpiError& e) {
        out[static_cast<std::size_t>(me)] =
            e.code() == Errc::crashed
                ? Outcome::crashed
                : (e.code() == Errc::aborted ? Outcome::aborted
                                             : Outcome::other);
        throw;
      }
    });
    FAIL() << "expected the run to fail";
  } catch (const MpiError& e) {
    // run() rethrows the *first* failure: the victim's crash.
    EXPECT_EQ(e.code(), Errc::crashed);
    EXPECT_TRUE(contains(e.what(), "[crashed]")) << e.what();
    EXPECT_TRUE(contains(e.what(), "rank 1")) << e.what();
  }
  EXPECT_EQ(out[1], Outcome::crashed);
  EXPECT_EQ(out[0], Outcome::aborted);
  EXPECT_EQ(out[2], Outcome::aborted);
}

TEST(FaultRuntimeTest, ReceiveWithNoSenderIsDetectedAsDeadlock) {
  try {
    run(1, Platform::ideal, [] {
      char b = 0;
      world().recv(&b, 1, 0, 5);  // no matching send can ever arrive
    });
    FAIL() << "expected a deadlock diagnosis";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::wait_timeout);
    EXPECT_TRUE(contains(e.what(), "deadlock detected")) << e.what();
  }
}

TEST(FaultRuntimeTest, PeerExitLeavingRankBlockedIsDetectedAsDeadlock) {
  try {
    run(2, Platform::ideal, [] {
      if (rank() == 0) {
        char b = 0;
        world().recv(&b, 1, 1, 5);  // rank 1 exits without ever sending
      }
    });
    FAIL() << "expected a deadlock diagnosis";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::wait_timeout);
    EXPECT_TRUE(contains(e.what(), "deadlock detected")) << e.what();
  }
}

TEST(FaultRuntimeTest, VirtualTimeWaitDeadlineFires) {
  Config cfg;
  cfg.nranks = 2;
  cfg.platform = Platform::infiniband;
  cfg.wait_deadline_ns = 1000.0;

  try {
    run(cfg, [] {
      char b = 0;
      if (rank() == 0) {
        // Waits for a tag that is never sent while global virtual time keeps
        // advancing past the deadline (driven by rank 1's sends).
        world().recv(&b, 1, 1, 7);
      } else {
        for (int i = 0; i < 50; ++i) world().send(&b, 1, 0, 1);
        world().recv(&b, 1, 0, 9);  // park until the peer's failure aborts us
      }
    });
    FAIL() << "expected a wait-deadline timeout";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::wait_timeout);
    EXPECT_TRUE(contains(e.what(), "deadline")) << e.what();
    EXPECT_TRUE(contains(e.what(), "comm.recv")) << e.what();
  }
}

TEST(FaultRuntimeTest, DeliveryDelayPostponesReceiveCompletion) {
  const double kDelay = 1e6;
  double recv_done_ns = 0.0;

  auto ping = [&recv_done_ns] {
    int v = 7;
    if (rank() == 0) {
      world().send(&v, sizeof v, 1, 0);
    } else {
      world().recv(&v, sizeof v, 0, 0);
      recv_done_ns = clock().now_ns();
    }
  };

  Config base;
  base.nranks = 2;
  base.platform = Platform::infiniband;
  run(base, ping);
  const double undelayed_ns = recv_done_ns;
  EXPECT_LT(undelayed_ns, kDelay);

  Config cfg = base;
  cfg.fault.seed = 3;
  cfg.fault.delay_rate = 1.0;  // every message is delayed
  cfg.fault.delay_ns = kDelay;
  run(cfg, ping);
  EXPECT_GE(recv_done_ns, kDelay);
  EXPECT_GT(recv_done_ns, undelayed_ns);
}

TEST(FaultRuntimeTest, LockStallChargesGrantLatency) {
  const double kStall = 5e5;
  double lock_cost_ns = 0.0;

  Config cfg;
  cfg.nranks = 1;
  cfg.platform = Platform::infiniband;
  cfg.fault.seed = 4;
  cfg.fault.lock_stall_rate = 1.0;  // every grant is stalled
  cfg.fault.lock_stall_ns = kStall;

  run(cfg, [&] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double t0 = clock().now_ns();
    win.lock(LockType::exclusive, 0);
    lock_cost_ns = clock().now_ns() - t0;
    win.unlock(0);
    win.free();
  });
  EXPECT_GE(lock_cost_ns, kStall);
}

}  // namespace
}  // namespace mpisim
