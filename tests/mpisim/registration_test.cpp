// Unit tests for the memory-registration cache model.

#include "src/mpisim/registration.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mpisim {
namespace {

constexpr std::size_t kPage = RegistrationCache::kPageBytes;

TEST(RegistrationTest, FirstTouchPinsPages) {
  RegistrationCache cache;
  alignas(4096) static std::uint8_t buf[4 * kPage];
  EXPECT_FALSE(cache.is_registered(buf, kPage));
  const std::size_t pinned = cache.ensure_registered(buf, 2 * kPage);
  EXPECT_EQ(pinned, 2u);
  EXPECT_TRUE(cache.is_registered(buf, 2 * kPage));
}

TEST(RegistrationTest, SecondTouchIsFree) {
  RegistrationCache cache;
  alignas(4096) static std::uint8_t buf[4 * kPage];
  cache.ensure_registered(buf, 3 * kPage);
  EXPECT_EQ(cache.ensure_registered(buf, 3 * kPage), 0u);
  EXPECT_EQ(cache.ensure_registered(buf + kPage, kPage), 0u);
}

TEST(RegistrationTest, PartialOverlapPinsOnlyGap) {
  RegistrationCache cache;
  alignas(4096) static std::uint8_t buf[8 * kPage];
  cache.ensure_registered(buf, 2 * kPage);
  // Extend by two more pages: only the new ones are pinned.
  EXPECT_EQ(cache.ensure_registered(buf, 4 * kPage), 2u);
  EXPECT_EQ(cache.pinned_pages(), 4u);
}

TEST(RegistrationTest, HoleBetweenRegionsIsCounted) {
  RegistrationCache cache;
  alignas(4096) static std::uint8_t buf[8 * kPage];
  cache.ensure_registered(buf, kPage);
  cache.ensure_registered(buf + 3 * kPage, kPage);
  EXPECT_EQ(cache.pinned_pages(), 2u);
  // Covering range pins exactly the two-page hole.
  EXPECT_EQ(cache.ensure_registered(buf, 4 * kPage), 2u);
  EXPECT_EQ(cache.pinned_pages(), 4u);
}

TEST(RegistrationTest, SubPageRangePinsWholePage) {
  RegistrationCache cache;
  alignas(4096) static std::uint8_t buf[2 * kPage];
  EXPECT_EQ(cache.ensure_registered(buf + 100, 8), 1u);
  EXPECT_TRUE(cache.is_registered(buf + 100, 8));
  EXPECT_TRUE(cache.is_registered(buf, 1));  // same page
}

TEST(RegistrationTest, StraddlingRangePinsBothPages) {
  RegistrationCache cache;
  alignas(4096) static std::uint8_t buf[4 * kPage];
  EXPECT_EQ(cache.ensure_registered(buf + kPage - 4, 8), 2u);
}

TEST(RegistrationTest, ZeroLengthIsTriviallyRegistered) {
  RegistrationCache cache;
  alignas(4096) static std::uint8_t buf[kPage];
  EXPECT_TRUE(cache.is_registered(buf, 0));
  EXPECT_EQ(cache.ensure_registered(buf, 0), 0u);
}

TEST(RegistrationTest, PrepinnedIsFreeAfterwards) {
  RegistrationCache cache;
  alignas(4096) static std::uint8_t buf[4 * kPage];
  cache.register_prepinned(buf, 4 * kPage);
  EXPECT_EQ(cache.ensure_registered(buf, 4 * kPage), 0u);
}

TEST(RegistrationTest, ClearDropsEverything) {
  RegistrationCache cache;
  alignas(4096) static std::uint8_t buf[2 * kPage];
  cache.ensure_registered(buf, 2 * kPage);
  cache.clear();
  EXPECT_EQ(cache.pinned_pages(), 0u);
  EXPECT_FALSE(cache.is_registered(buf, 1));
}

TEST(RegistrationTest, ManyDisjointRegionsMergeWhenCovered) {
  RegistrationCache cache;
  static std::vector<std::uint8_t> big(64 * kPage);
  std::uint8_t* base = big.data();
  for (int i = 0; i < 16; i += 2)
    cache.ensure_registered(base + static_cast<std::size_t>(i) * 2 * kPage,
                            kPage);
  const std::size_t before = cache.pinned_pages();
  cache.ensure_registered(base, 32 * kPage);
  EXPECT_GT(cache.pinned_pages(), before);
  EXPECT_EQ(cache.ensure_registered(base, 32 * kPage), 0u);
}

}  // namespace
}  // namespace mpisim
