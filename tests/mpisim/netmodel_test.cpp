// Tests for the virtual-time cost model and platform profiles. These pin
// down the qualitative regimes the paper's figures depend on.

#include "src/mpisim/netmodel.hpp"

#include <gtest/gtest.h>

#include "src/mpisim/platform.hpp"

namespace mpisim {
namespace {

double bw_gbps(double ns, std::size_t bytes) {
  return static_cast<double>(bytes) / 1073741824.0 / (ns * 1e-9);
}

TEST(NetModelTest, P2pCostMonotoneInSize) {
  NetworkModel m(platform_profile(Platform::infiniband));
  EXPECT_LT(m.p2p_ns(64), m.p2p_ns(4096));
  EXPECT_LT(m.p2p_ns(4096), m.p2p_ns(1 << 20));
}

TEST(NetModelTest, IdealPlatformIsFree) {
  NetworkModel m(platform_profile(Platform::ideal));
  EXPECT_EQ(m.p2p_ns(1 << 20), 0.0);
  EXPECT_EQ(m.rma_op_ns(RmaKind::put, 1 << 20, 1, Path::mpi), 0.0);
  EXPECT_EQ(m.barrier_ns(64), 0.0);
}

TEST(NetModelTest, LargeTransfersApproachPathBandwidth) {
  const PlatformProfile& prof = platform_profile(Platform::infiniband);
  NetworkModel m(prof);
  const std::size_t bytes = 64 << 20;
  const double native =
      bw_gbps(m.rma_op_ns(RmaKind::get, bytes, 1, Path::native), bytes);
  const double mpi =
      bw_gbps(m.rma_op_ns(RmaKind::get, bytes, 1, Path::mpi), bytes);
  EXPECT_NEAR(native, prof.net_bw_gbps * prof.nat_bw_eff, 0.1);
  EXPECT_NEAR(mpi, prof.net_bw_gbps * prof.mpi_bw_eff, 0.1);
}

// Paper Fig. 3 (InfiniBand): native accumulate outruns MPI accumulate by
// well over 1.5 GiB/s at large sizes.
TEST(NetModelTest, InfinibandAccumulateGap) {
  NetworkModel m(platform_profile(Platform::infiniband));
  const std::size_t bytes = 32 << 20;
  const double nat =
      bw_gbps(m.rma_op_ns(RmaKind::acc, bytes, 1, Path::native), bytes);
  const double mpi =
      bw_gbps(m.rma_op_ns(RmaKind::acc, bytes, 1, Path::mpi), bytes);
  EXPECT_GT(nat - mpi, 1.5);
}

// Paper Fig. 3 (Cray XT): MPI bandwidth halves beyond 32 KiB.
TEST(NetModelTest, Xt5BandwidthKink) {
  NetworkModel m(platform_profile(Platform::cray_xt5));
  const double below =
      bw_gbps(m.rma_op_ns(RmaKind::put, 32768, 1, Path::mpi), 32768);
  const double above = bw_gbps(
      m.rma_op_ns(RmaKind::put, 16 << 20, 1, Path::mpi), 16 << 20);
  // Large messages amortize the fixed overheads, so without the kink the
  // 16 MiB point would be *faster*; with it, it is clearly slower.
  EXPECT_LT(above, below);
  const double native_above = bw_gbps(
      m.rma_op_ns(RmaKind::put, 16 << 20, 1, Path::native), 16 << 20);
  EXPECT_NEAR(above / native_above, 0.5, 0.08);
}

// Paper Fig. 3 (Cray XE): ARMCI-MPI roughly doubles the development-release
// native bandwidth for large put/get and wins ~25% on accumulate.
TEST(NetModelTest, Xe6MpiBeatsNative) {
  NetworkModel m(platform_profile(Platform::cray_xe6));
  const std::size_t bytes = 16 << 20;
  const double mpi =
      bw_gbps(m.rma_op_ns(RmaKind::get, bytes, 1, Path::mpi), bytes);
  const double nat =
      bw_gbps(m.rma_op_ns(RmaKind::get, bytes, 1, Path::native), bytes);
  EXPECT_NEAR(mpi / nat, 2.0, 0.25);
  const double mpi_acc =
      bw_gbps(m.rma_op_ns(RmaKind::acc, bytes, 1, Path::mpi), bytes);
  const double nat_acc =
      bw_gbps(m.rma_op_ns(RmaKind::acc, bytes, 1, Path::native), bytes);
  EXPECT_NEAR(mpi_acc / nat_acc, 1.25, 0.1);
}

// Paper Fig. 6 (Cray XE): the native stack degrades with job size.
TEST(NetModelTest, Xe6NativeCongestionGrowsWithRanks) {
  NetworkModel m(platform_profile(Platform::cray_xe6));
  const double small =
      m.rma_op_ns(RmaKind::put, 1024, 1, Path::native, 0, true, 24);
  const double large =
      m.rma_op_ns(RmaKind::put, 1024, 1, Path::native, 0, true, 5952);
  EXPECT_GT(large, small * 2.0);
  // The MPI path does not have this term.
  EXPECT_EQ(m.rma_op_ns(RmaKind::put, 1024, 1, Path::mpi, 0, true, 24),
            m.rma_op_ns(RmaKind::put, 1024, 1, Path::mpi, 0, true, 5952));
}

TEST(NetModelTest, SegmentsCostMoreOnMpiPath) {
  NetworkModel m(platform_profile(Platform::bluegene_p));
  EXPECT_LT(m.rma_op_ns(RmaKind::put, 4096, 1, Path::mpi),
            m.rma_op_ns(RmaKind::put, 4096, 256, Path::mpi));
}

TEST(NetModelTest, EpochQueueDegradation) {
  NetworkModel m(platform_profile(Platform::infiniband));
  const double first = m.rma_op_ns(RmaKind::put, 16, 1, Path::mpi, 0);
  const double thousandth = m.rma_op_ns(RmaKind::put, 16, 1, Path::mpi, 1000);
  EXPECT_GT(thousandth, first);
}

TEST(NetModelTest, UnpinnedNativePathIsSlower) {
  NetworkModel m(platform_profile(Platform::infiniband));
  const std::size_t bytes = 1 << 20;
  EXPECT_GT(m.rma_op_ns(RmaKind::get, bytes, 1, Path::native, 0, false),
            m.rma_op_ns(RmaKind::get, bytes, 1, Path::native, 0, true));
}

TEST(NetModelTest, CollectiveCostsScaleLogarithmically) {
  NetworkModel m(platform_profile(Platform::cray_xt5));
  const double p2 = m.tree_collective_ns(1024, 2);
  const double p16 = m.tree_collective_ns(1024, 16);
  EXPECT_NEAR(p16 / p2, 4.0, 0.01);  // log2(16)/log2(2)
  EXPECT_EQ(m.tree_collective_ns(1024, 1), 0.0);
}

TEST(NetModelTest, AllPaperProfilesAreComplete) {
  for (Platform p : kPaperPlatforms) {
    const PlatformProfile& prof = platform_profile(p);
    EXPECT_FALSE(prof.name.empty());
    EXPECT_GT(prof.nodes, 0);
    EXPECT_GT(prof.net_bw_gbps, 0.0);
    EXPECT_GT(prof.cpu_ghz, 0.0);
    EXPECT_GT(prof.dgemm_gflops, 0.0);
  }
}

TEST(NetModelTest, NodeAwareP2pUsesShmCopyOnNode) {
  NetworkModel m(platform_profile(Platform::infiniband),
                 /*ranks_per_node_override=*/2);
  const std::size_t bytes = 1 << 16;
  // Ranks 0 and 1 share a node: the two-sided cost is the shared-memory
  // copy. Ranks 0 and 2 do not: it is the network p2p cost.
  EXPECT_EQ(m.p2p_ns(bytes, 0, 1), m.shm_copy_ns(bytes));
  EXPECT_EQ(m.p2p_ns(bytes, 0, 2), m.p2p_ns(bytes));
  // Latency-bound small messages are cheaper on-node (no NIC round trip);
  // at large sizes the ordering is bandwidth-dependent, so assert only the
  // small-message advantage.
  EXPECT_LT(m.p2p_ns(64, 0, 1), m.p2p_ns(64, 0, 2));
}

TEST(NetModelTest, PlatformIdsAreDistinct) {
  EXPECT_STREQ(platform_id(Platform::bluegene_p), "bgp");
  EXPECT_STREQ(platform_id(Platform::infiniband), "ib");
  EXPECT_STREQ(platform_id(Platform::cray_xt5), "xt5");
  EXPECT_STREQ(platform_id(Platform::cray_xe6), "xe6");
}

}  // namespace
}  // namespace mpisim
