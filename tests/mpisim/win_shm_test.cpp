// Tests for node-spanning shared-memory windows (Win::allocate_shared) and
// the same-node direct access operations: segment layout, data movement,
// the intra-node time charge, and the validation negatives (non-shared
// window, cross-node target, bounds, accumulate alignment).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/win.hpp"

namespace mpisim {
namespace {

Config shm_cfg(int nranks, int ranks_per_node,
               Platform platform = Platform::ideal) {
  Config cfg;
  cfg.nranks = nranks;
  cfg.platform = platform;
  cfg.ranks_per_node = ranks_per_node;
  return cfg;
}

template <typename Fn>
Errc expect_error(Fn&& fn) {
  try {
    fn();
  } catch (const MpiError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected MpiError";
  return Errc::internal;
}

TEST(WinShmTest, AllocateSharedCarvesPerRankSegments) {
  run(shm_cfg(4, 4), [] {
    Win win = Win::allocate_shared(32, world());
    EXPECT_TRUE(win.shared_memory());
    // Every segment is visible to every co-located rank, and carved from
    // one block: distinct, non-overlapping, and contiguous in comm order.
    for (int r = 0; r < 4; ++r) EXPECT_NE(win.base(r), nullptr);
    for (int r = 1; r < 4; ++r)
      EXPECT_EQ(static_cast<std::uint8_t*>(win.base(r)),
                static_cast<std::uint8_t*>(win.base(r - 1)) + 32);
    world().barrier();
    win.free();
  });
}

TEST(WinShmTest, ShmPutGetAccRoundTrip) {
  run(shm_cfg(2, 2), [] {
    Win win = Win::allocate_shared(8 * sizeof(std::int64_t), world());
    std::memset(win.base(rank()), 0, 8 * sizeof(std::int64_t));
    world().barrier();
    if (rank() == 0) {
      const std::int64_t v[2] = {41, -7};
      win.shm_put(v, sizeof v, 1, 0);
      const std::int64_t one = 1;
      win.shm_acc(Op::sum, BasicType::int64, &one, sizeof one, 1, 0);
      std::int64_t back[2] = {0, 0};
      win.shm_get(back, sizeof back, 1, 0);
      EXPECT_EQ(back[0], 42);
      EXPECT_EQ(back[1], -7);
    }
    world().barrier();
    // The target observes the stores directly through its own segment.
    if (rank() == 1) {
      std::int64_t local[2];
      std::memcpy(local, win.base(1), sizeof local);
      EXPECT_EQ(local[0], 42);
      EXPECT_EQ(local[1], -7);
    }
    world().barrier();
    win.free();
  });
}

TEST(WinShmTest, ShmCopyChargesIntraNodeCostOnly) {
  // On the infiniband profile the intra-node copy charges shm_copy_ns --
  // latency plus bytes over the shm bandwidth -- and nothing else (no lock
  // or flush round trips).
  run(shm_cfg(2, 2, Platform::infiniband), [] {
    Win win = Win::allocate_shared(4096, world());
    world().barrier();
    if (rank() == 0) {
      std::vector<std::uint8_t> buf(4096, 0xab);
      const double before = clock().now_ns();
      win.shm_put(buf.data(), buf.size(), 1, 0);
      EXPECT_DOUBLE_EQ(clock().now_ns() - before,
                       model().shm_copy_ns(buf.size()));
    }
    world().barrier();
    win.free();
  });
}

TEST(WinShmTest, ShmOpsRequireASharedWindow) {
  run(shm_cfg(2, 2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    EXPECT_FALSE(win.shared_memory());
    world().barrier();
    if (rank() == 0) {
      double v = 1.0;
      EXPECT_EQ(expect_error([&] { win.shm_put(&v, sizeof v, 1, 0); }),
                Errc::invalid_argument);
    }
    world().barrier();
    win.free();
  });
}

TEST(WinShmTest, ShmOpsRejectCrossNodeTargets) {
  run(shm_cfg(2, 1), [] {  // every rank its own node
    Win win = Win::allocate_shared(64, world());
    world().barrier();
    if (rank() == 0) {
      double v = 1.0;
      EXPECT_EQ(expect_error([&] { win.shm_put(&v, sizeof v, 1, 0); }),
                Errc::invalid_argument);
    }
    world().barrier();
    win.free();
  });
}

TEST(WinShmTest, ShmOpsRejectOutOfBoundsAndMisalignment) {
  run(shm_cfg(2, 2), [] {
    Win win = Win::allocate_shared(64, world());
    world().barrier();
    if (rank() == 0) {
      std::vector<std::uint8_t> buf(128, 0);
      EXPECT_EQ(expect_error([&] { win.shm_put(buf.data(), 128, 1, 0); }),
                Errc::window_bounds);
      EXPECT_EQ(expect_error([&] { win.shm_get(buf.data(), 8, 1, 60); }),
                Errc::window_bounds);
      // Accumulate length must be a whole number of elements.
      EXPECT_EQ(expect_error([&] {
                  win.shm_acc(Op::sum, BasicType::int64, buf.data(), 12, 1, 0);
                }),
                Errc::invalid_argument);
    }
    world().barrier();
    win.free();
  });
}

}  // namespace
}  // namespace mpisim
