// Integration tests for passive-target RMA windows, including MPI-2
// semantics enforcement (epoch discipline, lock rules, conflict detection).

#include "src/mpisim/win.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/mpisim/runtime.hpp"

namespace mpisim {
namespace {

TEST(WinTest, CreateExposesBasesAndSizes) {
  run(3, Platform::ideal, [] {
    std::vector<double> mem(16, static_cast<double>(rank()));
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    for (int r = 0; r < 3; ++r) {
      EXPECT_NE(win.base(r), nullptr);
      EXPECT_EQ(win.size(r), 16 * sizeof(double));
    }
    EXPECT_EQ(win.base(rank()), mem.data());
    win.free();
  });
}

TEST(WinTest, ZeroSizeRankParticipates) {
  run(3, Platform::ideal, [] {
    std::vector<double> mem(rank() == 1 ? 0 : 8);
    Win win = Win::create(mem.empty() ? nullptr : mem.data(),
                          mem.size() * sizeof(double), world());
    EXPECT_EQ(win.size(1), 0u);
    win.free();
  });
}

TEST(WinTest, PutThenGetRoundTrip) {
  run(2, Platform::ideal, [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    if (rank() == 0) {
      std::vector<double> src{1.5, 2.5, 3.5};
      win.lock(LockType::exclusive, 1);
      win.put(src.data(), src.size() * sizeof(double), 1, 2 * sizeof(double));
      win.unlock(1);

      std::vector<double> dst(3, 0.0);
      win.lock(LockType::exclusive, 1);
      win.get(dst.data(), dst.size() * sizeof(double), 1, 2 * sizeof(double));
      win.unlock(1);
      EXPECT_EQ(dst, src);
    }
    world().barrier();
    if (rank() == 1) {
      EXPECT_DOUBLE_EQ(mem[2], 1.5);
      EXPECT_DOUBLE_EQ(mem[4], 3.5);
      EXPECT_DOUBLE_EQ(mem[0], 0.0);
    }
    win.free();
  });
}

TEST(WinTest, AccumulateSumsElementwise) {
  run(2, Platform::ideal, [] {
    std::vector<double> mem(4, 10.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    if (rank() == 0) {
      std::vector<double> src{1.0, 2.0, 3.0, 4.0};
      const Datatype d = double_type();
      for (int iter = 0; iter < 3; ++iter) {
        win.lock(LockType::exclusive, 1);
        win.accumulate(src.data(), 4, d, 1, 0, 4, d, Op::sum);
        win.unlock(1);
      }
    }
    world().barrier();
    if (rank() == 1) {
      EXPECT_DOUBLE_EQ(mem[0], 13.0);
      EXPECT_DOUBLE_EQ(mem[3], 22.0);
    }
    win.free();
  });
}

TEST(WinTest, AccumulateReplaceActsAsPut) {
  run(2, Platform::ideal, [] {
    std::vector<std::int64_t> mem(4, -1);
    Win win = Win::create(mem.data(), mem.size() * sizeof(std::int64_t), world());
    world().barrier();
    if (rank() == 0) {
      std::vector<std::int64_t> src{7, 8, 9, 10};
      const Datatype d = int64_type();
      win.lock(LockType::exclusive, 1);
      win.accumulate(src.data(), 4, d, 1, 0, 4, d, Op::replace);
      win.unlock(1);
    }
    world().barrier();
    if (rank() == 1) { EXPECT_EQ(mem[3], 10); }
    win.free();
  });
}

TEST(WinTest, TypedPutScattersWithTargetDatatype) {
  run(2, Platform::ideal, [] {
    std::vector<double> mem(24, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    if (rank() == 0) {
      // Contiguous origin -> strided target (every other double).
      std::vector<double> src{1, 2, 3, 4};
      Datatype tt = Datatype::vector(4, 1, 2, double_type());
      win.lock(LockType::exclusive, 1);
      win.put(src.data(), 4, double_type(), 1, 0, 1, tt);
      win.unlock(1);
    }
    world().barrier();
    if (rank() == 1) {
      EXPECT_DOUBLE_EQ(mem[0], 1.0);
      EXPECT_DOUBLE_EQ(mem[2], 2.0);
      EXPECT_DOUBLE_EQ(mem[4], 3.0);
      EXPECT_DOUBLE_EQ(mem[6], 4.0);
      EXPECT_DOUBLE_EQ(mem[1], 0.0);
    }
    win.free();
  });
}

TEST(WinTest, SubarrayBothSidesTransposePatch) {
  run(2, Platform::ideal, [] {
    // Target holds an 8x8 row-major matrix; write a 3x4 patch at (2,1)
    // from a 3x4 patch at (0,2) of a local 4x8 matrix.
    std::vector<double> mem(64, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    if (rank() == 0) {
      std::vector<double> local(32);
      std::iota(local.begin(), local.end(), 0.0);
      const std::size_t lsz[] = {4, 8}, lsub[] = {3, 4}, lst[] = {0, 2};
      const std::size_t tsz[] = {8, 8}, tsub[] = {3, 4}, tst[] = {2, 1};
      Datatype ot = Datatype::subarray(lsz, lsub, lst, double_type());
      Datatype tt = Datatype::subarray(tsz, tsub, tst, double_type());
      win.lock(LockType::exclusive, 1);
      win.put(local.data(), 1, ot, 1, 0, 1, tt);
      win.unlock(1);
    }
    world().barrier();
    if (rank() == 1) {
      for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 4; ++j)
          EXPECT_DOUBLE_EQ(mem[(i + 2) * 8 + (j + 1)],
                           static_cast<double>(i * 8 + j + 2));
      EXPECT_DOUBLE_EQ(mem[0], 0.0);
      EXPECT_DOUBLE_EQ(mem[2 * 8 + 0], 0.0);
    }
    win.free();
  });
}

TEST(WinSemanticsTest, OpOutsideEpochThrows) {
  EXPECT_THROW(run(2, Platform::ideal,
                   [] {
                     std::vector<double> mem(4);
                     Win win = Win::create(mem.data(), 32, world());
                     if (rank() == 0) {
                       double v = 1.0;
                       win.put(&v, sizeof v, 1, 0);  // no lock held
                     }
                     world().barrier();
                     win.free();
                   }),
               MpiError);
}

TEST(WinSemanticsTest, DoubleLockSameWindowThrows) {
  try {
    run(3, Platform::ideal, [] {
      std::vector<double> mem(4);
      Win win = Win::create(mem.data(), 32, world());
      if (rank() == 0) {
        win.lock(LockType::exclusive, 1);
        win.lock(LockType::exclusive, 2);  // second lock, same window
      }
      world().barrier();
    });
    FAIL() << "expected MpiError";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::double_lock);
  }
}

TEST(WinSemanticsTest, UnlockWithoutLockThrows) {
  try {
    run(2, Platform::ideal, [] {
      std::vector<double> mem(4);
      Win win = Win::create(mem.data(), 32, world());
      if (rank() == 0) win.unlock(1);
      world().barrier();
    });
    FAIL() << "expected MpiError";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::not_locked);
  }
}

TEST(WinSemanticsTest, OutOfBoundsAccessThrows) {
  try {
    run(2, Platform::ideal, [] {
      std::vector<double> mem(4);
      Win win = Win::create(mem.data(), 32, world());
      if (rank() == 0) {
        double v[2] = {1, 2};
        win.lock(LockType::exclusive, 1);
        win.put(v, sizeof v, 1, 24);  // [24, 40) exceeds 32
        win.unlock(1);
      }
      world().barrier();
    });
    FAIL() << "expected MpiError";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::window_bounds);
  }
}

TEST(WinSemanticsTest, ConflictingPutPutInEpochThrows) {
  try {
    run(2, Platform::ideal, [] {
      std::vector<double> mem(8);
      Win win = Win::create(mem.data(), 64, world());
      if (rank() == 0) {
        double v[4] = {1, 2, 3, 4};
        win.lock(LockType::exclusive, 1);
        win.put(v, 16, 1, 0);
        win.put(v, 16, 1, 8);  // overlaps [8, 16)
        win.unlock(1);
      }
      world().barrier();
    });
    FAIL() << "expected MpiError";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::conflicting_access);
  }
}

TEST(WinSemanticsTest, PutGetOverlapInEpochThrows) {
  try {
    run(2, Platform::ideal, [] {
      std::vector<double> mem(8);
      Win win = Win::create(mem.data(), 64, world());
      if (rank() == 0) {
        double v[2] = {1, 2};
        double d[2];
        win.lock(LockType::exclusive, 1);
        win.put(v, 16, 1, 0);
        win.get(d, 16, 1, 8);  // reads bytes the put wrote
        win.unlock(1);
      }
      world().barrier();
    });
    FAIL() << "expected MpiError";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::conflicting_access);
  }
}

TEST(WinSemanticsTest, DisjointOpsInEpochAreLegal) {
  run(2, Platform::ideal, [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), 64, world());
    world().barrier();
    if (rank() == 0) {
      double a = 1.0, b = 2.0, c;
      win.lock(LockType::exclusive, 1);
      win.put(&a, 8, 1, 0);
      win.put(&b, 8, 1, 8);
      win.get(&c, 8, 1, 16);
      win.unlock(1);
    }
    world().barrier();
    win.free();
  });
}

TEST(WinSemanticsTest, SameOpAccumulateOverlapIsLegal) {
  run(2, Platform::ideal, [] {
    std::vector<double> mem(4, 0.0);
    Win win = Win::create(mem.data(), 32, world());
    world().barrier();
    if (rank() == 0) {
      double v[4] = {1, 1, 1, 1};
      const Datatype d = double_type();
      win.lock(LockType::exclusive, 1);
      win.accumulate(v, 4, d, 1, 0, 4, d, Op::sum);
      win.accumulate(v, 4, d, 1, 0, 4, d, Op::sum);  // overlapping, same op
      win.unlock(1);
    }
    world().barrier();
    if (rank() == 1) { EXPECT_DOUBLE_EQ(mem[0], 2.0); }
    win.free();
  });
}

TEST(WinSemanticsTest, DifferentOpAccumulateOverlapThrows) {
  try {
    run(2, Platform::ideal, [] {
      std::vector<double> mem(4, 0.0);
      Win win = Win::create(mem.data(), 32, world());
      if (rank() == 0) {
        double v[4] = {1, 1, 1, 1};
        const Datatype d = double_type();
        win.lock(LockType::exclusive, 1);
        win.accumulate(v, 4, d, 1, 0, 4, d, Op::sum);
        win.accumulate(v, 4, d, 1, 0, 4, d, Op::prod);
        win.unlock(1);
      }
      world().barrier();
    });
    FAIL() << "expected MpiError";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::conflicting_access);
  }
}

TEST(WinSemanticsTest, ConcurrentSharedAccumulatesSameOpSum) {
  run(8, Platform::ideal, [] {
    std::vector<double> mem(4, 0.0);
    Win win = Win::create(mem.data(), 32, world());
    world().barrier();
    // Every rank accumulates into rank 0 under a shared lock.
    double one[4] = {1, 1, 1, 1};
    const Datatype d = double_type();
    win.lock(LockType::shared, 0);
    win.accumulate(one, 4, d, 0, 0, 4, d, Op::sum);
    win.unlock(0);
    world().barrier();
    if (rank() == 0) {
      for (double x : mem) EXPECT_DOUBLE_EQ(x, 8.0);
    }
    win.free();
  });
}

TEST(WinSemanticsTest, ExclusiveLocksSerializeConflictingWriters) {
  run(8, Platform::ideal, [] {
    std::vector<std::int64_t> mem(1, 0);
    Win win = Win::create(mem.data(), sizeof(std::int64_t), world());
    world().barrier();
    // Conflicting put+get to the same location from many ranks: legal only
    // because each runs under its own exclusive epoch.
    for (int iter = 0; iter < 20; ++iter) {
      std::int64_t v = 0;
      win.lock(LockType::exclusive, 0);
      win.get(&v, sizeof v, 0, 0);
      win.unlock(0);
      ++v;
      win.lock(LockType::exclusive, 0);
      win.put(&v, sizeof v, 0, 0);
      win.unlock(0);
    }
    world().barrier();
    // Lost updates are expected (read-modify-write is not atomic), but the
    // final value must be within [20, 160] and memory must not be torn.
    if (rank() == 0) {
      EXPECT_GE(mem[0], 20);
      EXPECT_LE(mem[0], 160);
    }
    win.free();
  });
}

TEST(WinSemanticsTest, TypeSizeMismatchThrows) {
  try {
    run(2, Platform::ideal, [] {
      std::vector<double> mem(8);
      Win win = Win::create(mem.data(), 64, world());
      if (rank() == 0) {
        double v[2] = {1, 2};
        win.lock(LockType::exclusive, 1);
        win.put(v, 2, double_type(), 1, 0, 3, double_type());
        win.unlock(1);
      }
      world().barrier();
    });
    FAIL() << "expected MpiError";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::type_mismatch);
  }
}

TEST(WinTimeTest, ExclusiveEpochsAccrueVirtualTime) {
  run(2, Platform::infiniband, [] {
    std::vector<double> mem(1 << 16, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    if (rank() == 0) {
      std::vector<double> src(1 << 16, 1.0);
      const double before = clock().now_ns();
      win.lock(LockType::exclusive, 1);
      win.put(src.data(), src.size() * sizeof(double), 1, 0);
      win.unlock(1);
      const double elapsed = clock().now_ns() - before;
      // 512 KiB at ~2.8 GiB/s plus overheads: at least 150 us.
      EXPECT_GT(elapsed, 150000.0);
      EXPECT_LT(elapsed, 10e6);
    }
    world().barrier();
    win.free();
  });
}

TEST(WinTimeTest, MoreSegmentsCostMoreVirtualTime) {
  run(2, Platform::bluegene_p, [] {
    std::vector<double> mem(4096, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    if (rank() == 0) {
      std::vector<double> src(1024, 1.0);
      win.lock(LockType::exclusive, 1);
      const double t0 = clock().now_ns();
      win.put(src.data(), src.size() * sizeof(double), 1, 0);
      const double contig = clock().now_ns() - t0;
      win.unlock(1);

      Datatype strided = Datatype::vector(512, 1, 2, double_type());
      win.lock(LockType::exclusive, 1);
      const double t1 = clock().now_ns();
      win.put(src.data(), 512, double_type(), 1, 0, 1, strided);
      const double noncontig = clock().now_ns() - t1;
      win.unlock(1);
      EXPECT_GT(noncontig, contig);
    }
    world().barrier();
    win.free();
  });
}

TEST(WinTest, MultipleWindowsCoexist) {
  run(2, Platform::ideal, [] {
    std::vector<double> a(4, 0.0), b(4, 0.0);
    Win wa = Win::create(a.data(), 32, world());
    Win wb = Win::create(b.data(), 32, world());
    world().barrier();
    if (rank() == 0) {
      double va = 1.0, vb = 2.0;
      wa.lock(LockType::exclusive, 1);
      wa.put(&va, 8, 1, 0);
      wa.unlock(1);
      wb.lock(LockType::exclusive, 1);
      wb.put(&vb, 8, 1, 0);
      wb.unlock(1);
    }
    world().barrier();
    if (rank() == 1) {
      EXPECT_DOUBLE_EQ(a[0], 1.0);
      EXPECT_DOUBLE_EQ(b[0], 2.0);
    }
    wa.free();
    wb.free();
  });
}

TEST(WinTest, WindowOnSubcommunicator) {
  run(4, Platform::ideal, [] {
    Comm sub = world().split(rank() % 2, rank());
    std::vector<double> mem(4, static_cast<double>(rank()));
    Win win = Win::create(mem.data(), 32, sub);
    sub.barrier();
    if (sub.rank() == 0) {
      double v = -1.0;
      win.lock(LockType::exclusive, 1);
      win.get(&v, 8, 1, 0);
      win.unlock(1);
      EXPECT_DOUBLE_EQ(v, static_cast<double>(rank() + 2));
    }
    sub.barrier();
    win.free();
  });
}

}  // namespace
}  // namespace mpisim
