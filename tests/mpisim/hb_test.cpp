// Positive and negative suite for the happens-before race detector
// (src/mpisim/hb.hpp, MPISIM_RMA_CHECK=race). One positive test per
// missing-edge class -- unordered put/put across epochs, get against an
// unflushed accumulate, serialized-by-luck shared epochs, shm direct store
// against a published-but-unsynchronized put, and post-crash access to a
// dead rank's data without a recovery edge -- plus negative twins proving
// every synchronization edge (barrier, exclusive lock handoff, message,
// channel, failure_ack) suppresses the report. Standalone HbChecker unit
// tests pin the shadow-store memory bounds: exact pruning, min-clock
// same-origin merging (no lost detections), and the hard cap's overflow
// accounting.

#include "src/mpisim/hb.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/win.hpp"

namespace mpisim {
namespace {

Config race_cfg(int nranks) {
  Config cfg;
  cfg.nranks = nranks;
  cfg.platform = Platform::ideal;
  cfg.check_conflicts = false;
  cfg.rma_check = RmaCheck::race;
  return cfg;
}

HbRaceCounts my_races() { return ctx().core().hb().counts(rank()); }

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

/// Expects \p fn to raise Errc::rma_race and returns the message.
template <typename Fn>
std::string expect_race(Fn&& fn) {
  try {
    fn();
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::rma_race) << e.what();
    return e.what();
  }
  ADD_FAILURE() << "expected Errc::rma_race";
  return {};
}

TEST(HbTest, RaceAndModeNamesAreStable) {
  EXPECT_STREQ(hb_race_name(HbRace::ww), "ww");
  EXPECT_STREQ(hb_race_name(HbRace::rw), "rw");
  EXPECT_STREQ(hb_race_name(HbRace::acc_mix), "acc_mix");
  EXPECT_STREQ(hb_race_name(HbRace::shm), "shm");
  EXPECT_STREQ(hb_race_name(HbRace::dead_origin), "dead_origin");
  EXPECT_STREQ(rma_check_name(RmaCheck::race), "race");
}

TEST(HbTest, ParseRmaCheckAcceptsKnownValuesOnly) {
  RmaCheck m = RmaCheck::warn;
  EXPECT_TRUE(parse_rma_check("off", &m));
  EXPECT_EQ(m, RmaCheck::off);
  EXPECT_TRUE(parse_rma_check("warn", &m));
  EXPECT_EQ(m, RmaCheck::warn);
  EXPECT_TRUE(parse_rma_check("abort", &m));
  EXPECT_EQ(m, RmaCheck::abort);
  EXPECT_TRUE(parse_rma_check("race", &m));
  EXPECT_EQ(m, RmaCheck::race);
  m = RmaCheck::abort;
  EXPECT_FALSE(parse_rma_check("bogus", &m));
  EXPECT_FALSE(parse_rma_check("", &m));
  EXPECT_FALSE(parse_rma_check("RACE", &m));
  EXPECT_FALSE(parse_rma_check(nullptr, &m));
  EXPECT_EQ(m, RmaCheck::abort);  // rejected values leave *out untouched
}

TEST(HbTest, EnvVarRaceEnablesTheDetector) {
  ASSERT_EQ(setenv("MPISIM_RMA_CHECK", "race", 1), 0);
  Config cfg = race_cfg(1);
  cfg.rma_check = RmaCheck::off;  // env must win
  run(cfg, [] {
    EXPECT_EQ(ctx().core().checker().mode(), RmaCheck::race);
    EXPECT_TRUE(ctx().core().hb().enabled());
  });
  unsetenv("MPISIM_RMA_CHECK");
}

TEST(HbTest, UnknownEnvValueFallsBackToOff) {
  ASSERT_EQ(setenv("MPISIM_RMA_CHECK", "frobnicate", 1), 0);
  Config cfg = race_cfg(1);
  cfg.rma_check = RmaCheck::abort;  // the bad env value must not silently win
  run(cfg, [] {
    EXPECT_EQ(ctx().core().checker().mode(), RmaCheck::off);
    EXPECT_FALSE(ctx().core().hb().enabled());
  });
  unsetenv("MPISIM_RMA_CHECK");
}

// Class ww, pending tier: two shared (lock_all) origins put to overlapping
// bytes and the first never flushes. No ordering can exist before the
// publication point, so the second put races no matter what collectives
// separate them -- the missing flush IS the missing edge.
TEST(HbTest, UnorderedLockAllPutsRace) {
  run(race_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    win.lock_all();
    if (rank() == 0) win.put(src, sizeof src, 0, 0);  // in flight, no flush
    world().barrier();  // an edge -- but pending conflicts race regardless
    if (rank() == 1) {
      const std::string msg = expect_race(
          [&] { win.put(src, sizeof src, 0, sizeof(double)); });
      EXPECT_TRUE(contains(msg, "[ww]")) << msg;
      EXPECT_TRUE(contains(msg, "in-flight")) << msg;
      EXPECT_TRUE(contains(msg, "never completed by a flush or unlock"))
          << msg;
      EXPECT_EQ(my_races().ww, 1u);
    }
    world().barrier();  // hold the unlock (publication) until after the check
    win.unlock_all();
    world().barrier();
    win.free();
  });
}

// Class rw, pending tier: a get against another origin's unflushed put.
TEST(HbTest, GetAgainstUnflushedPutRaces) {
  run(race_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    win.lock_all();
    if (rank() == 0) win.put(src, sizeof src, 0, 0);
    world().barrier();
    if (rank() == 1) {
      double out[2] = {0.0, 0.0};
      const std::string msg =
          expect_race([&] { win.get(out, sizeof out, 0, 0); });
      EXPECT_TRUE(contains(msg, "[rw]")) << msg;
      EXPECT_TRUE(contains(msg, "get")) << msg;
      EXPECT_EQ(my_races().rw, 1u);
    }
    world().barrier();  // hold the unlock (publication) until after the check
    win.unlock_all();
    world().barrier();
    win.free();
  });
}

// Class acc_mix, pending tier: a put lands on bytes another origin is
// accumulating into without having flushed.
TEST(HbTest, PutAgainstUnflushedAccumulateRaces) {
  run(race_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    win.lock_all();
    if (rank() == 0)
      win.accumulate(src, 2, double_type(), 0, 0, 2, double_type(), Op::sum);
    world().barrier();
    if (rank() == 1) {
      const std::string msg =
          expect_race([&] { win.put(src, sizeof src, 0, 0); });
      EXPECT_TRUE(contains(msg, "[acc_mix]")) << msg;
      EXPECT_TRUE(contains(msg, "accumulate")) << msg;
      EXPECT_EQ(my_races().acc_mix, 1u);
    }
    world().barrier();  // hold the unlock (publication) until after the check
    win.unlock_all();
    world().barrier();
    win.free();
  });
}

// Class ww, published tier: the first put IS flushed, but nothing orders
// the second origin after the publication -- the test forces the real-time
// order with a host-level atomic the simulator cannot see. This is the
// bug class the epoch checker is structurally blind to.
TEST(HbTest, PublishedPutWithoutAnEdgeRaces) {
  std::atomic<bool> ready{false};
  run(race_cfg(2), [&] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    win.lock_all();
    if (rank() == 0) {
      win.put(src, sizeof src, 0, 0);
      win.flush(0);  // published -- but a flush creates no inter-rank edge
      ready.store(true, std::memory_order_release);
    } else {
      while (!ready.load(std::memory_order_acquire))
        std::this_thread::yield();
      const std::string msg = expect_race(
          [&] { win.put(src, sizeof src, 0, sizeof(double)); });
      EXPECT_TRUE(contains(msg, "[ww]")) << msg;
      EXPECT_TRUE(contains(msg, "published at flush")) << msg;
      EXPECT_TRUE(contains(msg, "no synchronization")) << msg;
      EXPECT_EQ(my_races().ww, 1u);
    }
    win.unlock_all();
    world().barrier();
    win.free();
  });
}

// Negative twin: the same flushed put followed by a barrier is ordered.
TEST(HbTest, BarrierOrdersPublishedPuts) {
  run(race_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    win.lock_all();
    if (rank() == 0) {
      win.put(src, sizeof src, 0, 0);
      win.flush(0);
    }
    world().barrier();  // publication happens-before the second put
    if (rank() == 1) {
      win.put(src, sizeof src, 0, sizeof(double));
      win.flush(0);
    }
    win.unlock_all();
    world().barrier();
    win.free();
    EXPECT_EQ(ctx().core().hb().total_counts().total(), 0u);
  });
}

// Negative: an exclusive lock handoff is an edge (the unlock releases the
// clock into the target-side slot; the next grant acquires it), even when
// the interleaving is forced by a host atomic rather than any collective.
TEST(HbTest, ExclusiveLockHandoffOrdersEpochs) {
  std::atomic<bool> ready{false};
  run(race_cfg(2), [&] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    if (rank() == 0) {
      win.lock(LockType::exclusive, 0);
      win.put(src, sizeof src, 0, 0);
      win.unlock(0);
      ready.store(true, std::memory_order_release);
    } else {
      while (!ready.load(std::memory_order_acquire))
        std::this_thread::yield();
      win.lock(LockType::exclusive, 0);
      win.put(src, sizeof src, 0, 0);  // same bytes; ordered via the slot
      win.unlock(0);
    }
    world().barrier();
    win.free();
    EXPECT_EQ(ctx().core().hb().total_counts().total(), 0u);
  });
}

// Two shared epochs on the same bytes that only happen to be serialized in
// real time: MPI gives shared holders no mutual ordering, so the values
// are undefined -- a race. The epoch checker deliberately accepts this
// (serialized epochs look clean to it); the vector clocks do not, because
// no synchronization edge proves the order. Errc::rma_race (not
// rma_conflict) pins which detector fired.
TEST(HbTest, SerializedSharedEpochsWithoutAnEdgeRace) {
  std::atomic<bool> ready{false};
  run(race_cfg(2), [&] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    if (rank() == 0) {
      win.lock(LockType::shared, 0);
      win.put(src, sizeof src, 0, 0);
      win.unlock(0);  // published -- but shared unlocks order nobody
      ready.store(true, std::memory_order_release);
    } else {
      while (!ready.load(std::memory_order_acquire))
        std::this_thread::yield();
      win.lock(LockType::shared, 0);
      const std::string msg =
          expect_race([&] { win.put(src, sizeof src, 0, 0); });
      EXPECT_TRUE(contains(msg, "[ww]")) << msg;
      EXPECT_TRUE(contains(msg, "published at shared unlock")) << msg;
      EXPECT_EQ(my_races().ww, 1u);
      win.unlock(0);
    }
    world().barrier();
    win.free();
  });
}

// Negative: a shared unlock followed by an *exclusive* grant is ordered
// (the exclusive grant waited for every shared holder to drain).
TEST(HbTest, SharedUnlockToExclusiveGrantIsAnEdge) {
  std::atomic<bool> ready{false};
  run(race_cfg(2), [&] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    if (rank() == 0) {
      win.lock(LockType::shared, 0);
      win.put(src, sizeof src, 0, 0);
      win.unlock(0);
      ready.store(true, std::memory_order_release);
    } else {
      while (!ready.load(std::memory_order_acquire))
        std::this_thread::yield();
      win.lock(LockType::exclusive, 0);
      win.put(src, sizeof src, 0, 0);
      win.unlock(0);
    }
    world().barrier();
    win.free();
    EXPECT_EQ(ctx().core().hb().total_counts().total(), 0u);
  });
}

// Negative: a two-sided message carries the sender's clock, so publication
// before a send is visible to accesses after the matching receive.
TEST(HbTest, MessageCreatesTheEdge) {
  run(race_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    if (rank() == 0) {
      win.lock(LockType::shared, 0);
      win.put(src, sizeof src, 0, 0);
      win.unlock(0);
      const char token = 1;
      world().send(&token, 1, 1, 9);
    } else {
      char token = 0;
      world().recv(&token, 1, 0, 9);
      win.lock(LockType::shared, 0);
      win.put(src, sizeof src, 0, 0);  // ordered via the message edge
      win.unlock(0);
    }
    world().barrier();
    win.free();
    EXPECT_EQ(ctx().core().hb().total_counts().total(), 0u);
  });
}

// Class shm: a direct store into bytes whose covering put was flushed (so
// the epoch checker sees nothing in flight) but never synchronized to the
// storing rank.
TEST(HbTest, ShmDirectStoreAgainstPublishedPutRaces) {
  Config cfg = race_cfg(2);
  cfg.ranks_per_node = 2;  // co-locate both ranks: the shm path is legal
  std::atomic<bool> ready{false};
  run(cfg, [&] {
    Win win = Win::allocate_shared(8 * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    if (rank() == 0) {
      win.lock(LockType::shared, 1);
      win.put(src, sizeof src, 1, 0);
      win.flush(1);  // published: nothing in flight for the epoch checker
      ready.store(true, std::memory_order_release);
    } else {
      while (!ready.load(std::memory_order_acquire))
        std::this_thread::yield();
      const std::string msg =
          expect_race([&] { win.shm_put(src, sizeof src, 1, 0); });
      EXPECT_TRUE(contains(msg, "[shm]")) << msg;
      EXPECT_TRUE(contains(msg, "direct store")) << msg;
      EXPECT_EQ(my_races().shm, 1u);
    }
    world().barrier();
    if (rank() == 0) win.unlock(1);
    world().barrier();
    win.free();
  });
}

// Class dead_origin: a rank publishes a put and dies; a survivor touching
// those bytes before any recovery edge races (the publication clock died
// with the victim), and the same access after failure_ack() is clean.
TEST(HbTest, DeadOriginRequiresARecoveryEdge) {
  constexpr double kCrashAt = 1e6;
  const int victim = 0;
  std::atomic<bool> wrote{false};
  Config cfg = race_cfg(3);
  cfg.platform = Platform::infiniband;
  cfg.fault.seed = 7;
  cfg.fault.survivable = true;
  cfg.fault.crashes = {{victim, kCrashAt}};
  run(cfg, [&] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    win.lock_all();
    if (rank() == victim) {
      win.put(src, sizeof src, 2, 0);
      win.flush(2);
      wrote.store(true, std::memory_order_release);
      clock().advance(2 * kCrashAt);  // die at the next fault point
      world().barrier();
      std::abort();  // unreachable: the fault point must throw
    }
    while (!wrote.load(std::memory_order_acquire)) std::this_thread::yield();
    while (!ctx().core().is_failed(victim)) std::this_thread::yield();
    if (rank() == 1) {
      const std::string msg =
          expect_race([&] { win.put(src, sizeof src, 2, 0); });
      EXPECT_TRUE(contains(msg, "[dead_origin]")) << msg;
      EXPECT_TRUE(contains(msg, "origin died")) << msg;
      EXPECT_EQ(my_races().dead_origin, 1u);
      world().failure_ack();  // the recovery edge: acquire the dead's clock
      win.put(src, sizeof src, 2, 0);
      win.flush(2);
    }
    world().barrier();
    win.unlock_all();
    world().barrier();
    win.free();
  });
}

// The interval cap operates inside the simulator: flood one target with
// disjoint published intervals under a tiny Config::rma_check_max_intervals
// and the oldest summaries are dropped and counted, never raised.
TEST(HbTest, IntervalCapDropsOldestAndCountsOverflow) {
  Config cfg = race_cfg(2);
  cfg.rma_check_max_intervals = 2;
  run(cfg, [] {
    std::vector<double> mem(64, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    if (rank() == 0) {
      const double v = 1.0;
      win.lock(LockType::exclusive, 0);
      for (int i = 0; i < 8; ++i) {
        // Non-adjacent displacements: no two intervals can coalesce.
        win.put(&v, sizeof v, 0, static_cast<std::size_t>(3 * i) * sizeof v);
        win.flush(0);  // one single-interval summary per iteration
      }
      win.unlock(0);
      std::lock_guard lk(ctx().core().mu());
      EXPECT_LE(ctx().core().hb().shadow_intervals(), 2u);
      EXPECT_GE(my_races().overflow, 1u);
      EXPECT_EQ(my_races().total(), 0u);  // overflow is not a race
    }
    world().barrier();
    win.free();
  });
}

// ---- standalone HbChecker unit tests (no simulation) ----

using OpKind = RmaChecker::OpKind;

/// Publish one single-interval put from \p world_origin on <space 7,
/// target 0> via a shared-epoch release.
void publish_put(HbChecker& hb, int world_origin, std::ptrdiff_t lo,
                 std::ptrdiff_t hi, bool exclusive = false) {
  hb.record_op(7, 0, world_origin, world_origin, OpKind::put, Op::replace,
               lo, hi, nullptr);
  hb.lock_released(7, 0, world_origin, exclusive);
}

TEST(HbCheckerUnit, SummariesAcquiredByEveryPeerArePruned) {
  // One rank: every summary is trivially acquired by all (zero) peers, so
  // crossing the prune threshold empties the list instead of growing it.
  HbChecker hb(true, 1, 0);
  for (int i = 0; i < 12; ++i)
    publish_put(hb, 0, 32 * i, 32 * i + 8, /*exclusive=*/true);
  EXPECT_LE(hb.shadow_intervals(), 9u);
  EXPECT_EQ(hb.total_counts().overflow, 0u);
}

TEST(HbCheckerUnit, MergedSummariesStillCatchRaces) {
  // Unacquired same-origin summaries merge under pressure with
  // component-wise minimum clocks: the store shrinks, and a genuinely
  // unordered peer access still races (merging may only lose precision
  // toward MORE reports, never fewer).
  HbChecker hb(true, 2, 0);
  for (int i = 0; i < 20; ++i) publish_put(hb, 0, 8 * i, 8 * i + 8);
  EXPECT_LE(hb.shadow_intervals(), 5u);
  try {
    hb.record_op(7, 0, 1, 1, OpKind::put, Op::replace, 0, 16, nullptr);
    FAIL() << "expected a ww race against the merged summary";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::rma_race) << e.what();
    EXPECT_NE(std::string(e.what()).find("[ww]"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(hb.counts(1).ww, 1u);
}

TEST(HbCheckerUnit, HardCapDropsOldestAndCountsOverflow) {
  HbChecker hb(true, 2, 4);
  for (int i = 0; i < 8; ++i)
    publish_put(hb, 0, 32 * i, 32 * i + 8, /*exclusive=*/true);
  EXPECT_EQ(hb.shadow_intervals(), 4u);
  EXPECT_EQ(hb.counts(0).overflow, 4u);
  EXPECT_EQ(hb.total_counts().overflow, 4u);
  EXPECT_EQ(hb.total_counts().total(), 0u);
}

TEST(HbCheckerUnit, ChannelReleaseAcquireOrdersPublications) {
  HbChecker hb(true, 2, 0);
  publish_put(hb, 0, 0, 8);
  hb.channel_release(42, 0);
  hb.channel_acquire(42, 1);
  EXPECT_NO_THROW(
      hb.record_op(7, 0, 1, 1, OpKind::put, Op::replace, 0, 8, nullptr));
  EXPECT_EQ(hb.total_counts().total(), 0u);
}

TEST(HbCheckerUnit, AcquiringAnUnreleasedChannelIsNotAnEdge) {
  HbChecker hb(true, 2, 0);
  publish_put(hb, 0, 0, 8);
  hb.channel_acquire(99, 1);  // never released: must be a no-op
  EXPECT_THROW(
      hb.record_op(7, 0, 1, 1, OpKind::put, Op::replace, 0, 8, nullptr),
      MpiError);
}

TEST(HbCheckerUnit, CollectiveRoundJoinsAllArrivals) {
  HbChecker hb(true, 2, 0);
  publish_put(hb, 0, 0, 8);
  HbClock acc;
  hb.coll_arrive(acc, 0);
  hb.coll_arrive(acc, 1);
  hb.coll_depart(0, acc);
  hb.coll_depart(1, acc);
  EXPECT_NO_THROW(
      hb.record_op(7, 0, 1, 1, OpKind::put, Op::replace, 0, 8, nullptr));
}

TEST(HbCheckerUnit, WindowFreedDropsShadowState) {
  HbChecker hb(true, 2, 0);
  publish_put(hb, 0, 0, 8);
  EXPECT_GT(hb.shadow_intervals(), 0u);
  hb.window_freed(7);
  EXPECT_EQ(hb.shadow_intervals(), 0u);
  EXPECT_NO_THROW(
      hb.record_op(7, 0, 1, 1, OpKind::put, Op::replace, 0, 8, nullptr));
}

TEST(HbCheckerUnit, MuteScopeSuppressesRecording) {
  HbChecker hb(true, 2, 0);
  publish_put(hb, 0, 0, 8);
  {
    HbChecker::MuteScope mute;
    // Would race without the mute; sync-word accesses are exempt.
    EXPECT_NO_THROW(
        hb.record_op(7, 0, 1, 1, OpKind::put, Op::replace, 0, 8, nullptr));
  }
  EXPECT_THROW(
      hb.record_op(7, 0, 1, 1, OpKind::put, Op::replace, 0, 8, nullptr),
      MpiError);
}

}  // namespace
}  // namespace mpisim
