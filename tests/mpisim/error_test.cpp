// Negative-path tests pinning the error classification: errc_name covers
// every enum value, MpiError::what() carries the class name, and the
// runtime raises the documented Errc for each MPI-2 usage violation.

#include "src/mpisim/error.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/mpisim/comm.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/win.hpp"

namespace mpisim {
namespace {

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(ErrcNameTest, EveryValueHasAName) {
  EXPECT_STREQ(errc_name(Errc::internal), "internal");
  EXPECT_STREQ(errc_name(Errc::invalid_argument), "invalid_argument");
  EXPECT_STREQ(errc_name(Errc::rank_out_of_range), "rank_out_of_range");
  EXPECT_STREQ(errc_name(Errc::type_mismatch), "type_mismatch");
  EXPECT_STREQ(errc_name(Errc::truncation), "truncation");
  EXPECT_STREQ(errc_name(Errc::window_bounds), "window_bounds");
  EXPECT_STREQ(errc_name(Errc::no_epoch), "no_epoch");
  EXPECT_STREQ(errc_name(Errc::double_lock), "double_lock");
  EXPECT_STREQ(errc_name(Errc::not_locked), "not_locked");
  EXPECT_STREQ(errc_name(Errc::conflicting_access), "conflicting_access");
  EXPECT_STREQ(errc_name(Errc::rma_conflict), "rma_conflict");
  EXPECT_STREQ(errc_name(Errc::rma_race), "rma_race");
  EXPECT_STREQ(errc_name(Errc::comm_mismatch), "comm_mismatch");
  EXPECT_STREQ(errc_name(Errc::aborted), "aborted");
  EXPECT_STREQ(errc_name(Errc::wait_timeout), "wait_timeout");
  EXPECT_STREQ(errc_name(Errc::transient), "transient");
  EXPECT_STREQ(errc_name(Errc::crashed), "crashed");
}

TEST(ErrcNameTest, WhatIsPrefixedWithTheClassName) {
  const MpiError e(Errc::no_epoch, "boom");
  EXPECT_STREQ(e.what(), "[no_epoch] boom");
  EXPECT_EQ(e.code(), Errc::no_epoch);
  try {
    raise(Errc::window_bounds, "details here");
    FAIL() << "raise() must throw";
  } catch (const MpiError& r) {
    EXPECT_TRUE(contains(r.what(), "[window_bounds] mpisim: details here"))
        << r.what();
  }
}

/// Run \p body on one ideal-platform rank and return the MpiError it dies
/// with; fails the test if the run succeeds.
template <typename Body>
MpiError expect_run_error(Body&& body) {
  try {
    run(1, Platform::ideal, body);
  } catch (const MpiError& e) {
    return e;
  }
  ADD_FAILURE() << "expected the run to raise MpiError";
  return MpiError(Errc::internal, "run unexpectedly succeeded");
}

TEST(ErrorPathTest, SecondLockOnSameWindowIsDoubleLock) {
  const MpiError e = expect_run_error([] {
    std::vector<double> mem(4, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    win.lock(LockType::exclusive, 0);
    win.lock(LockType::shared, 0);  // second lock by the same origin
  });
  EXPECT_EQ(e.code(), Errc::double_lock);
  EXPECT_TRUE(contains(e.what(), "[double_lock]")) << e.what();
}

TEST(ErrorPathTest, UnlockWithoutLockIsNotLocked) {
  const MpiError e = expect_run_error([] {
    std::vector<double> mem(4, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    win.unlock(0);
  });
  EXPECT_EQ(e.code(), Errc::not_locked);
  EXPECT_TRUE(contains(e.what(), "[not_locked]")) << e.what();
}

TEST(ErrorPathTest, RmaOutsideAnEpochIsNoEpoch) {
  const MpiError e = expect_run_error([] {
    std::vector<double> mem(4, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double v = 1.0;
    win.put(&v, sizeof v, 0, 0);  // no lock held
  });
  EXPECT_EQ(e.code(), Errc::no_epoch);
  EXPECT_TRUE(contains(e.what(), "[no_epoch]")) << e.what();
}

TEST(ErrorPathTest, AccessPastTheWindowEndIsWindowBounds) {
  const MpiError e = expect_run_error([] {
    std::vector<double> mem(4, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    win.lock(LockType::exclusive, 0);
    const double v = 1.0;
    win.put(&v, sizeof v, 0, /*target_disp=*/4 * sizeof(double));
  });
  EXPECT_EQ(e.code(), Errc::window_bounds);
  EXPECT_TRUE(contains(e.what(), "[window_bounds]")) << e.what();
}

TEST(ErrorPathTest, PutGetOverlapInOneEpochIsConflictingAccess) {
  const MpiError e = expect_run_error([] {
    std::vector<double> mem(4, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    win.lock(LockType::exclusive, 0);
    const double v = 1.0;
    double out = 0.0;
    win.put(&v, sizeof v, 0, 0);
    win.get(&out, sizeof out, 0, 0);  // overlaps the put: MPI-2 erroneous
  });
  EXPECT_EQ(e.code(), Errc::conflicting_access);
  EXPECT_TRUE(contains(e.what(), "[conflicting_access]")) << e.what();
}

TEST(ErrorPathTest, UndersizedReceiveBufferIsTruncation) {
  try {
    run(2, Platform::ideal, [] {
      if (rank() == 0) {
        const std::int64_t big = 42;
        world().send(&big, sizeof big, 1, 0);
      } else {
        std::int32_t small = 0;
        world().recv(&small, sizeof small, 0, 0);
      }
    });
    FAIL() << "expected truncation";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::truncation);
    EXPECT_TRUE(contains(e.what(), "[truncation]")) << e.what();
  }
}

}  // namespace
}  // namespace mpisim
