// Negative-path suite for the RMA validity checker (src/mpisim/checker.hpp):
// each MPI-2 conflict class must be detected and classified, abort mode must
// raise Errc::rma_conflict at the epoch boundary, warn mode must count and
// complete, and the lock-state fixes must raise classified errors instead of
// indexing out of range. Config::check_conflicts is off throughout so the
// deferred reporting path (rather than the legacy issue-time raise) is what
// the assertions exercise.

#include "src/mpisim/checker.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/mpisim/win.hpp"

namespace mpisim {
namespace {

Config abort_cfg(int nranks) {
  Config cfg;
  cfg.nranks = nranks;
  cfg.platform = Platform::ideal;
  cfg.check_conflicts = false;
  cfg.rma_check = RmaCheck::abort;
  return cfg;
}

RmaCheckCounts my_counts() { return ctx().core().checker().counts(rank()); }

/// Expects \p fn to raise Errc::rma_conflict and returns the message.
template <typename Fn>
std::string expect_conflict(Fn&& fn) {
  try {
    fn();
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::rma_conflict) << e.what();
    return e.what();
  }
  ADD_FAILURE() << "expected Errc::rma_conflict";
  return {};
}

TEST(CheckerTest, SharedLockPutPutOverlapAborts) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    win.lock(LockType::shared, 0);
    world().barrier();
    if (rank() == 0) win.put(src, sizeof src, 0, 0);
    world().barrier();
    if (rank() == 1) {
      win.put(src, sizeof src, 0, sizeof(double));  // overlaps [8, 16)
      expect_conflict([&] { win.unlock(0); });
      win.unlock(0);  // epoch record already retired; releases the lock
      EXPECT_EQ(my_counts().concurrent, 1u);
    } else {
      win.unlock(0);
      EXPECT_EQ(my_counts().total(), 0u);
    }
    world().barrier();
    win.free();
  });
}

TEST(CheckerTest, SharedLockPutGetOverlapAborts) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    double buf[2] = {0.0, 0.0};
    win.lock(LockType::shared, 0);
    world().barrier();
    if (rank() == 0) win.put(buf, sizeof buf, 0, 0);
    world().barrier();
    if (rank() == 1) {
      win.get(buf, sizeof buf, 0, 0);
      expect_conflict([&] { win.unlock(0); });
      win.unlock(0);
      EXPECT_EQ(my_counts().concurrent, 1u);
    } else {
      win.unlock(0);
    }
    world().barrier();
    win.free();
  });
}

TEST(CheckerTest, AccumulateMixedWithPutAborts) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    win.lock(LockType::shared, 0);
    world().barrier();
    if (rank() == 0) win.put(src, sizeof src, 0, 0);
    world().barrier();
    if (rank() == 1) {
      win.accumulate(src, 2, double_type(), 0, 0, 2, double_type(), Op::sum);
      expect_conflict([&] { win.unlock(0); });
      win.unlock(0);
      EXPECT_EQ(my_counts().acc_mix, 1u);
    } else {
      win.unlock(0);
    }
    world().barrier();
    win.free();
  });
}

TEST(CheckerTest, DifferentOpAccumulatesAbort) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(8, 1.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    win.lock(LockType::shared, 0);
    world().barrier();
    if (rank() == 0)
      win.accumulate(src, 2, double_type(), 0, 0, 2, double_type(), Op::sum);
    world().barrier();
    if (rank() == 1) {
      win.accumulate(src, 2, double_type(), 0, 0, 2, double_type(), Op::prod);
      expect_conflict([&] { win.unlock(0); });
      win.unlock(0);
      EXPECT_EQ(my_counts().acc_mix, 1u);
    } else {
      win.unlock(0);
    }
    world().barrier();
    win.free();
  });
}

TEST(CheckerTest, SameOpAccumulatesAreClean) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    win.lock(LockType::shared, 0);
    world().barrier();
    win.accumulate(src, 2, double_type(), 0, 0, 2, double_type(), Op::sum);
    world().barrier();
    win.unlock(0);
    EXPECT_EQ(my_counts().total(), 0u);
    world().barrier();
    if (rank() == 0) {
      EXPECT_DOUBLE_EQ(mem[0], 2.0);
      EXPECT_DOUBLE_EQ(mem[1], 4.0);
    }
    win.free();
  });
}

TEST(CheckerTest, SameOriginOverlappingPutsAbort) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    if (rank() == 0) {
      const double src[2] = {1.0, 2.0};
      win.lock(LockType::exclusive, 1);
      win.put(src, sizeof src, 1, 0);
      win.put(src, sizeof src, 1, sizeof(double));
      expect_conflict([&] { win.unlock(1); });
      win.unlock(1);
      EXPECT_EQ(my_counts().same_origin, 1u);
    }
    world().barrier();
    win.free();
  });
}

// A conflicting access must be reported even when the other epoch has
// already closed: the closing epoch leaves its access summary ("ghost")
// with every epoch it was concurrent with.
TEST(CheckerTest, ClosedConcurrentEpochStillConflicts) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    win.lock(LockType::shared, 0);
    world().barrier();  // both shared epochs are open and thus concurrent
    if (rank() == 0) {
      win.put(src, sizeof src, 0, 0);
      win.unlock(0);
    }
    world().barrier();
    if (rank() == 1) {
      win.put(src, sizeof src, 0, 0);
      const std::string msg = expect_conflict([&] { win.unlock(0); });
      EXPECT_NE(msg.find("closed concurrent epoch"), std::string::npos) << msg;
      win.unlock(0);
      EXPECT_EQ(my_counts().concurrent, 1u);
    }
    world().barrier();
    win.free();
  });
}

// Serialized reuse stays legal: once an epoch closes, epochs opened *later*
// on the same bytes never see its ghost.
TEST(CheckerTest, SerializedEpochsOnSameBytesAreClean) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    world().barrier();
    if (rank() == 0) {
      win.lock(LockType::shared, 0);
      win.put(src, sizeof src, 0, 0);
      win.unlock(0);
    }
    world().barrier();
    if (rank() == 1) {
      win.lock(LockType::shared, 0);
      win.put(src, sizeof src, 0, 0);
      win.unlock(0);
      EXPECT_EQ(my_counts().total(), 0u);
    }
    world().barrier();
    win.free();
  });
}

TEST(CheckerTest, LocalStoreDuringExposureAborts) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    if (rank() == 1) {
      win.lock(LockType::shared, 0);
      win.put(src, sizeof src, 0, 0);
    }
    world().barrier();
    if (rank() == 0) {
      // Direct store into our exposed slice without an exclusive self-epoch.
      win.local_access_begin(mem.data(), 2 * sizeof(double), /*write=*/true);
      mem[0] = 42.0;
      const std::string msg =
          expect_conflict([&] { win.local_access_end(mem.data()); });
      EXPECT_NE(msg.find("direct local store"), std::string::npos) << msg;
      EXPECT_EQ(my_counts().local, 1u);
    }
    world().barrier();
    if (rank() == 1) win.unlock(0);
    world().barrier();
    win.free();
  });
}

TEST(CheckerTest, CoveredLocalAccessIsClean) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    // The ARMCI direct-local-access discipline: take an exclusive self-epoch
    // first, then touch the memory with host instructions.
    win.lock(LockType::exclusive, rank());
    win.local_access_begin(mem.data(), 0, /*write=*/true);
    mem[3] = 7.0;
    win.local_access_end(mem.data());
    win.unlock(rank());
    EXPECT_EQ(my_counts().total(), 0u);
    world().barrier();
    win.free();
  });
}

// MPI-3 lock_all epochs follow the MPI-3 memory model: conflicting accesses
// yield undefined values but are not erroneous, so the checker stays silent.
TEST(CheckerTest, LockAllConflictsAreNotFlagged) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    win.lock_all();
    world().barrier();
    win.put(src, sizeof src, 0, 0);  // both ranks write the same bytes
    world().barrier();
    win.unlock_all();
    EXPECT_EQ(my_counts().total(), 0u);
    world().barrier();
    win.free();
  });
}

TEST(CheckerTest, FlushResetsTrackingUnit) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    if (rank() == 0) {
      double buf[2] = {1.0, 2.0};
      win.lock(LockType::exclusive, 1);
      win.put(buf, sizeof buf, 1, 0);
      win.flush(1);  // orders the put before everything after it
      win.get(buf, sizeof buf, 1, 0);
      win.unlock(1);
      EXPECT_EQ(my_counts().total(), 0u);
      EXPECT_DOUBLE_EQ(buf[0], 1.0);
    }
    world().barrier();
    win.free();
  });
}

// Direction 1: remote RMA already in flight, then a same-node direct access
// touches the same bytes. The shm fast path must be checked like a local
// access: the conflicting store is reported at shm_end, classified local.
TEST(CheckerTest, ShmAccessAgainstInFlightRmaAborts) {
  Config cfg = abort_cfg(2);
  cfg.ranks_per_node = 2;  // co-locate both ranks: the shm path is legal
  run(cfg, [] {
    Win win = Win::allocate_shared(8 * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    if (rank() == 0) {
      win.lock(LockType::shared, 1);
      win.put(src, sizeof src, 1, 0);  // in flight: not yet flushed
    }
    world().barrier();
    if (rank() == 1) {
      // Direct store into the bytes the unflushed put targets.
      const std::string msg =
          expect_conflict([&] { win.shm_put(src, sizeof src, 1, 0); });
      EXPECT_NE(msg.find("direct"), std::string::npos) << msg;
      EXPECT_EQ(my_counts().local, 1u);
    }
    world().barrier();
    if (rank() == 0) win.unlock(1);
    world().barrier();
    win.free();
  });
}

// Direction 2: a held-open same-node direct access (shm_access_begin), then
// remote RMA lands on the declared bytes. The RMA origin is the violator;
// its epoch close reports the conflict.
TEST(CheckerTest, RmaAgainstOpenShmAccessAborts) {
  Config cfg = abort_cfg(2);
  cfg.ranks_per_node = 2;
  run(cfg, [] {
    Win win = Win::allocate_shared(8 * sizeof(double), world());
    const double src[2] = {1.0, 2.0};
    if (rank() == 1)
      win.shm_access_begin(1, 0, sizeof src, /*write=*/true);  // own segment
    world().barrier();
    if (rank() == 0) {
      win.lock(LockType::shared, 1);
      win.put(src, sizeof src, 1, 0);  // lands on the open declaration
      const std::string msg = expect_conflict([&] { win.unlock(1); });
      EXPECT_NE(msg.find("direct"), std::string::npos) << msg;
      EXPECT_EQ(my_counts().local, 1u);
      win.unlock(1);  // record retired; releases the lock
    }
    world().barrier();
    if (rank() == 1) win.shm_access_end(1, 0);
    world().barrier();
    win.free();
  });
}

TEST(CheckerTest, WarnModeCountsAndCompletes) {
  Config cfg = abort_cfg(2);
  cfg.rma_check = RmaCheck::warn;
  run(cfg, [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    if (rank() == 0) {
      const double src[2] = {1.0, 2.0};
      win.lock(LockType::exclusive, 1);
      win.put(src, sizeof src, 1, 0);
      win.put(src, sizeof src, 1, 0);
      win.unlock(1);  // warn mode: prints to stderr, does not raise
      EXPECT_EQ(my_counts().same_origin, 1u);
      EXPECT_EQ(my_counts().total(), 1u);
    }
    world().barrier();
    win.free();
  });
}

TEST(CheckerTest, DiagnosticNamesOpsAndEpochs) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    if (rank() == 0) {
      const double src[2] = {1.0, 2.0};
      win.lock(LockType::exclusive, 1);
      win.put(src, sizeof src, 1, 0);
      win.put(src, sizeof src, 1, 0);
      const std::string msg = expect_conflict([&] { win.unlock(1); });
      EXPECT_NE(msg.find("put"), std::string::npos) << msg;
      EXPECT_NE(msg.find("bytes ["), std::string::npos) << msg;
      EXPECT_NE(msg.find("epoch #"), std::string::npos) << msg;
      EXPECT_NE(msg.find("origin"), std::string::npos) << msg;
      win.unlock(1);
    }
    world().barrier();
    win.free();
  });
}

TEST(CheckerTest, CleanExclusiveEpochsZeroCounters) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(8, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    if (rank() == 0) {
      double buf[4] = {1.0, 2.0, 3.0, 4.0};
      win.lock(LockType::exclusive, 1);
      win.put(buf, sizeof buf, 1, 0);
      win.unlock(1);
      win.lock(LockType::exclusive, 1);
      win.get(buf, sizeof buf, 1, 0);
      win.unlock(1);
    }
    world().barrier();
    EXPECT_EQ(ctx().core().checker().total_counts().total(), 0u);
    win.free();
  });
}

// ---- Lock-state accounting fixes (previously unchecked index/UB holes) ----

TEST(CheckerTest, UnlockWithoutLockRaisesNotLocked) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(4, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    try {
      win.unlock(0);
      ADD_FAILURE() << "expected Errc::not_locked";
    } catch (const MpiError& e) {
      EXPECT_EQ(e.code(), Errc::not_locked) << e.what();
    }
    EXPECT_EQ(my_counts().discipline, 1u);
    world().barrier();
    win.free();
  });
}

TEST(CheckerTest, UnlockOutOfRangeTargetRaisesRankOutOfRange) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(4, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    try {
      win.unlock(5);
      ADD_FAILURE() << "expected Errc::rank_out_of_range";
    } catch (const MpiError& e) {
      EXPECT_EQ(e.code(), Errc::rank_out_of_range) << e.what();
    }
    world().barrier();
    win.free();
  });
}

TEST(CheckerTest, FlushOutOfRangeTargetRaises) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(4, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    world().barrier();
    try {
      win.flush(-3);
      ADD_FAILURE() << "expected Errc::rank_out_of_range";
    } catch (const MpiError& e) {
      EXPECT_EQ(e.code(), Errc::rank_out_of_range) << e.what();
    }
    world().barrier();
    win.free();
  });
}

TEST(CheckerTest, LockAllThenLockRaisesDoubleLock) {
  run(abort_cfg(2), [] {
    std::vector<double> mem(4, 0.0);
    Win win = Win::create(mem.data(), mem.size() * sizeof(double), world());
    win.lock_all();
    try {
      win.lock(LockType::exclusive, 0);
      ADD_FAILURE() << "expected Errc::double_lock";
    } catch (const MpiError& e) {
      EXPECT_EQ(e.code(), Errc::double_lock) << e.what();
    }
    EXPECT_EQ(my_counts().discipline, 1u);
    win.unlock_all();
    world().barrier();
    win.free();
  });
}

// The MPISIM_RMA_CHECK environment variable overrides Config::rma_check at
// SimCore construction (the hook the abort-mode CI job uses).
TEST(CheckerTest, EnvVarOverridesConfiguredMode) {
  ASSERT_EQ(setenv("MPISIM_RMA_CHECK", "off", 1), 0);
  Config cfg = abort_cfg(2);
  run(cfg, [] {
    EXPECT_EQ(ctx().core().checker().mode(), RmaCheck::off);
  });
  unsetenv("MPISIM_RMA_CHECK");
}

TEST(CheckerTest, ViolationAndModeNamesAreStable) {
  EXPECT_STREQ(rma_check_name(RmaCheck::off), "off");
  EXPECT_STREQ(rma_check_name(RmaCheck::warn), "warn");
  EXPECT_STREQ(rma_check_name(RmaCheck::abort), "abort");
  EXPECT_STREQ(rma_violation_name(RmaViolation::same_origin), "same_origin");
  EXPECT_STREQ(rma_violation_name(RmaViolation::concurrent), "concurrent");
  EXPECT_STREQ(rma_violation_name(RmaViolation::acc_mix), "acc_mix");
  EXPECT_STREQ(rma_violation_name(RmaViolation::local), "local");
  EXPECT_STREQ(rma_violation_name(RmaViolation::discipline), "discipline");
}

}  // namespace
}  // namespace mpisim
