// Integration tests for communicators: p2p matching, collectives,
// construction (dup/split/create), intercommunicators, and virtual time.

#include "src/mpisim/comm.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <vector>

#include "src/mpisim/runtime.hpp"

namespace mpisim {
namespace {

TEST(RuntimeTest, RanksSeeTheirIdentity) {
  std::atomic<int> sum{0};
  run(4, Platform::ideal, [&] {
    EXPECT_EQ(nranks(), 4);
    EXPECT_GE(rank(), 0);
    EXPECT_LT(rank(), 4);
    sum += rank();
  });
  EXPECT_EQ(sum.load(), 6);
}

TEST(RuntimeTest, CallOutsideRunThrows) {
  EXPECT_THROW(ctx(), MpiError);
  EXPECT_FALSE(in_simulation());
}

TEST(RuntimeTest, RankFailurePropagatesAndUnblocksPeers) {
  EXPECT_THROW(
      run(4, Platform::ideal,
          [] {
            if (rank() == 2) throw std::logic_error("injected failure");
            world().barrier();  // would hang without abort propagation
          }),
      std::logic_error);
}

TEST(RuntimeTest, AbortedCollectiveReportsAborted) {
  try {
    run(3, Platform::ideal, [] {
      if (rank() == 0) raise(Errc::invalid_argument, "boom");
      world().barrier();
    });
    FAIL() << "expected throw";
  } catch (const MpiError& e) {
    EXPECT_EQ(e.code(), Errc::invalid_argument);  // first error wins
  }
}

TEST(CommP2pTest, BasicSendRecv) {
  run(2, Platform::ideal, [] {
    Comm w = world();
    if (rank() == 0) {
      const int v = 42;
      w.send(&v, sizeof v, 1, 7);
    } else {
      int v = 0;
      Status st = w.recv(&v, sizeof v, 0, 7);
      EXPECT_EQ(v, 42);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, sizeof v);
    }
  });
}

TEST(CommP2pTest, TagMatchingIsSelective) {
  run(2, Platform::ideal, [] {
    Comm w = world();
    if (rank() == 0) {
      const int a = 1, b = 2;
      w.send(&a, sizeof a, 1, 10);
      w.send(&b, sizeof b, 1, 20);
    } else {
      int v = 0;
      w.recv(&v, sizeof v, 0, 20);  // out of order by tag
      EXPECT_EQ(v, 2);
      w.recv(&v, sizeof v, 0, 10);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(CommP2pTest, WildcardSourceAndTag) {
  run(4, Platform::ideal, [] {
    Comm w = world();
    if (rank() != 0) {
      const int v = rank() * 100;
      w.send(&v, sizeof v, 0, rank());
    } else {
      int seen = 0;
      for (int i = 0; i < 3; ++i) {
        int v = 0;
        Status st = w.recv(&v, sizeof v, kAnySource, kAnyTag);
        EXPECT_EQ(v, st.source * 100);
        EXPECT_EQ(st.tag, st.source);
        seen += st.source;
      }
      EXPECT_EQ(seen, 6);
    }
  });
}

TEST(CommP2pTest, FifoOrderPerSenderAndTag) {
  run(2, Platform::ideal, [] {
    Comm w = world();
    if (rank() == 0) {
      for (int i = 0; i < 10; ++i) w.send(&i, sizeof i, 1, 5);
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        w.recv(&v, sizeof v, 0, 5);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(CommP2pTest, TruncationThrows) {
  EXPECT_THROW(run(2, Platform::ideal,
                   [] {
                     Comm w = world();
                     if (rank() == 0) {
                       std::array<char, 16> big{};
                       w.send(big.data(), big.size(), 1, 0);
                     } else {
                       char small[4];
                       w.recv(small, sizeof small, 0, 0);
                     }
                   }),
               MpiError);
}

TEST(CommP2pTest, IprobeSeesPendingMessage) {
  run(2, Platform::ideal, [] {
    Comm w = world();
    if (rank() == 0) {
      const int v = 5;
      w.send(&v, sizeof v, 1, 3);
      w.barrier();
    } else {
      w.barrier();  // ensure the message arrived
      Status st;
      EXPECT_TRUE(w.iprobe(0, 3, &st));
      EXPECT_EQ(st.bytes, sizeof(int));
      EXPECT_FALSE(w.iprobe(0, 99));
      int v = 0;
      w.recv(&v, sizeof v, 0, 3);
    }
  });
}

TEST(CommP2pTest, ReceiveAdvancesVirtualClock) {
  run(2, Platform::infiniband, [] {
    Comm w = world();
    if (rank() == 0) {
      std::vector<char> buf(1 << 20);
      w.send(buf.data(), buf.size(), 1, 0);
    } else {
      std::vector<char> buf(1 << 20);
      const double before = clock().now_ns();
      w.recv(buf.data(), buf.size(), 0, 0);
      // 1 MiB at 3.2 GiB/s is ~305 us.
      EXPECT_GT(clock().now_ns() - before, 200000.0);
    }
  });
}

TEST(CommP2pTest, IsendIrecvRoundTrip) {
  run(2, Platform::ideal, [] {
    Comm w = world();
    if (rank() == 0) {
      const int v = 77;
      Comm::Request s = w.isend(&v, sizeof v, 1, 9);
      s.wait();
    } else {
      int v = 0;
      Comm::Request r = w.irecv(&v, sizeof v, 0, 9);
      Status st;
      r.wait(&st);
      EXPECT_EQ(v, 77);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 9);
    }
  });
}

TEST(CommP2pTest, IrecvTestPollsWithoutBlocking) {
  run(2, Platform::ideal, [] {
    Comm w = world();
    if (rank() == 1) {
      int v = 0;
      Comm::Request r = w.irecv(&v, sizeof v, 0, 4);
      // Nothing sent yet: test() must not block or complete.
      // (The sender is gated on our message below.)
      EXPECT_FALSE(r.test());
      const int go = 1;
      w.send(&go, sizeof go, 0, 5);
      r.wait();
      EXPECT_EQ(v, 13);
    } else {
      int go = 0;
      w.recv(&go, sizeof go, 1, 5);
      const int v = 13;
      w.send(&v, sizeof v, 1, 4);
    }
  });
}

TEST(CommP2pTest, WaitAllCompletesABatch) {
  run(4, Platform::ideal, [] {
    Comm w = world();
    if (rank() == 0) {
      std::vector<int> vals(3, 0);
      std::vector<Comm::Request> reqs;
      for (int src = 1; src < 4; ++src)
        reqs.push_back(w.irecv(&vals[static_cast<std::size_t>(src - 1)],
                               sizeof(int), src, 2));
      Comm::wait_all(reqs);
      EXPECT_EQ(vals[0] + vals[1] + vals[2], 10 + 20 + 30);
    } else {
      const int v = rank() * 10;
      w.send(&v, sizeof v, 0, 2);
    }
  });
}

TEST(CommCollTest, BarrierSynchronizesClocks) {
  run(4, Platform::infiniband, [] {
    // Rank 2 is "slow": give it extra virtual work before the barrier.
    if (rank() == 2) clock().advance(1e9);
    world().barrier();
    EXPECT_GE(clock().now_ns(), 1e9);
  });
}

TEST(CommCollTest, BcastFromEveryRoot) {
  run(4, Platform::ideal, [] {
    Comm w = world();
    for (int root = 0; root < 4; ++root) {
      std::array<double, 8> buf{};
      if (rank() == root)
        for (int i = 0; i < 8; ++i) buf[static_cast<std::size_t>(i)] = root * 10.0 + i;
      w.bcast(buf.data(), sizeof buf, root);
      for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(buf[static_cast<std::size_t>(i)], root * 10.0 + i);
    }
  });
}

TEST(CommCollTest, AllreduceSumAndMax) {
  run(5, Platform::ideal, [] {
    Comm w = world();
    const std::int64_t mine = rank() + 1;
    std::int64_t sum = 0;
    w.allreduce(&mine, &sum, 1, BasicType::int64, Op::sum);
    EXPECT_EQ(sum, 15);
    std::int64_t mx = 0;
    w.allreduce(&mine, &mx, 1, BasicType::int64, Op::max);
    EXPECT_EQ(mx, 5);
  });
}

TEST(CommCollTest, ReduceToRootOnly) {
  run(4, Platform::ideal, [] {
    Comm w = world();
    const double mine = static_cast<double>(rank());
    double out = -1.0;
    w.reduce(&mine, &out, 1, BasicType::float64, Op::sum, 2);
    if (rank() == 2) {
      EXPECT_DOUBLE_EQ(out, 6.0);
    }
    else
      EXPECT_DOUBLE_EQ(out, -1.0);
  });
}

TEST(CommCollTest, AllgatherOrdersByRank) {
  run(4, Platform::ideal, [] {
    Comm w = world();
    const int mine = rank() * 3;
    std::array<int, 4> all{};
    w.allgather(&mine, all.data(), sizeof mine);
    for (int r = 0; r < 4; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 3);
  });
}

TEST(CommCollTest, AllgathervVariableSizes) {
  run(3, Platform::ideal, [] {
    Comm w = world();
    // Rank r contributes r+1 bytes of value 'A'+r.
    std::vector<char> mine(static_cast<std::size_t>(rank() + 1),
                           static_cast<char>('A' + rank()));
    const std::array<std::size_t, 3> counts{1, 2, 3};
    std::vector<char> out(6);
    w.allgatherv(mine.data(), mine.size(), out.data(), counts);
    EXPECT_EQ(std::string(out.begin(), out.end()), "ABBCCC");
  });
}

TEST(CommCollTest, AlltoallTransposes) {
  run(4, Platform::ideal, [] {
    Comm w = world();
    std::array<int, 4> in{}, out{};
    for (int j = 0; j < 4; ++j)
      in[static_cast<std::size_t>(j)] = rank() * 10 + j;
    w.alltoall(in.data(), out.data(), sizeof(int));
    for (int j = 0; j < 4; ++j)
      EXPECT_EQ(out[static_cast<std::size_t>(j)], j * 10 + rank());
  });
}

TEST(CommCollTest, InclusiveScan) {
  run(4, Platform::ideal, [] {
    Comm w = world();
    const std::int32_t mine = rank() + 1;
    std::int32_t pre = 0;
    w.scan(&mine, &pre, 1, BasicType::int32, Op::sum);
    EXPECT_EQ(pre, (rank() + 1) * (rank() + 2) / 2);
  });
}

TEST(CommCollTest, RepeatedCollectivesDoNotInterfere) {
  run(4, Platform::ideal, [] {
    Comm w = world();
    for (int iter = 0; iter < 50; ++iter) {
      std::int64_t mine = rank() + iter;
      std::int64_t sum = 0;
      w.allreduce(&mine, &sum, 1, BasicType::int64, Op::sum);
      EXPECT_EQ(sum, 6 + 4 * iter);
    }
  });
}

TEST(CommCtorTest, DupHasNewIdSameGroup) {
  run(3, Platform::ideal, [] {
    Comm w = world();
    Comm d = w.dup();
    EXPECT_NE(d.id(), w.id());
    EXPECT_EQ(d.size(), w.size());
    EXPECT_EQ(d.rank(), w.rank());
    // Messages on the dup do not match receives on world.
    if (rank() == 0) {
      const int v = 9;
      d.send(&v, sizeof v, 1, 0);
    } else if (rank() == 1) {
      EXPECT_FALSE(w.iprobe(0, 0));
      int v = 0;
      d.recv(&v, sizeof v, 0, 0);
      EXPECT_EQ(v, 9);
    }
    d.barrier();
  });
}

TEST(CommCtorTest, SplitEvenOdd) {
  run(6, Platform::ideal, [] {
    Comm sub = world().split(rank() % 2, rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), rank() / 2);
    EXPECT_EQ(sub.world_rank(sub.rank()), rank());
    std::int64_t mine = rank(), sum = 0;
    sub.allreduce(&mine, &sum, 1, BasicType::int64, Op::sum);
    EXPECT_EQ(sum, rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  });
}

TEST(CommCtorTest, SplitKeyControlsOrdering) {
  run(4, Platform::ideal, [] {
    // Reverse order via descending keys.
    Comm sub = world().split(0, -rank());
    EXPECT_EQ(sub.rank(), 3 - rank());
  });
}

TEST(CommCtorTest, SplitNegativeColorGetsNothing) {
  run(4, Platform::ideal, [] {
    Comm sub = world().split(rank() == 0 ? -1 : 0, rank());
    if (rank() == 0) {
      EXPECT_FALSE(sub.valid());
    }
    else
      EXPECT_EQ(sub.size(), 3);
  });
}

TEST(CommCtorTest, CreateSubgroup) {
  run(5, Platform::ideal, [] {
    Group sub({1, 3, 4});
    Comm c = world().create(sub);
    if (sub.contains(rank())) {
      ASSERT_TRUE(c.valid());
      EXPECT_EQ(c.size(), 3);
      EXPECT_EQ(c.world_rank(c.rank()), rank());
    } else {
      EXPECT_FALSE(c.valid());
    }
  });
}

TEST(CommInterTest, CreateAndMerge) {
  run(6, Platform::ideal, [] {
    // Two halves: {0,1,2} and {3,4,5}; leaders 0 and 3.
    Comm local = world().split(rank() < 3 ? 0 : 1, rank());
    Comm inter = local.intercomm_create(0, rank() < 3 ? 3 : 0, 99);
    EXPECT_TRUE(inter.is_inter());
    EXPECT_EQ(inter.size(), 3);
    EXPECT_EQ(inter.remote_size(), 3);

    // P2p across the intercomm: rank i of one side pings rank i of the other.
    const int peer = inter.rank();
    const int v = rank();
    inter.send(&v, sizeof v, peer, 1);
    int got = -1;
    inter.recv(&got, sizeof got, peer, 1);
    EXPECT_EQ(got, rank() < 3 ? rank() + 3 : rank() - 3);

    // Merge: low side (containing world 0) first.
    Comm merged = inter.merge(/*high=*/rank() >= 3);
    EXPECT_FALSE(merged.is_inter());
    EXPECT_EQ(merged.size(), 6);
    EXPECT_EQ(merged.rank(), rank());  // ordering reproduces world order here
    std::int64_t mine = 1, total = 0;
    merged.allreduce(&mine, &total, 1, BasicType::int64, Op::sum);
    EXPECT_EQ(total, 6);
  });
}

TEST(CommInterTest, MergeHighFirstSideOrdering) {
  run(4, Platform::ideal, [] {
    Comm local = world().split(rank() < 2 ? 0 : 1, rank());
    Comm inter = local.intercomm_create(0, rank() < 2 ? 2 : 0, 42);
    // The low-world side asks to be high: ordering flips.
    Comm merged = inter.merge(/*high=*/rank() < 2);
    EXPECT_EQ(merged.size(), 4);
    const int expect = rank() < 2 ? rank() + 2 : rank() - 2;
    EXPECT_EQ(merged.rank(), expect);
  });
}

TEST(CommStressTest, ManyCommunicatorsAndMessages) {
  run(8, Platform::ideal, [] {
    Comm w = world();
    // Build a ring of subcommunicators and circulate a token in each.
    for (int round = 0; round < 5; ++round) {
      Comm sub = w.split(rank() % 2, rank());
      const int n = sub.size();
      const int next = (sub.rank() + 1) % n;
      const int prev = (sub.rank() - 1 + n) % n;
      int token = round;
      if (sub.rank() == 0) {
        sub.send(&token, sizeof token, next, round);
        sub.recv(&token, sizeof token, prev, round);
        EXPECT_EQ(token, round + n - 1);
      } else {
        sub.recv(&token, sizeof token, prev, round);
        ++token;
        sub.send(&token, sizeof token, next, round);
      }
    }
  });
}

TEST(RequestLifecycleTest, DoubleWaitRaisesInvalidArgument) {
  run(2, Platform::ideal, [] {
    Comm w = world();
    if (rank() == 0) {
      const std::int32_t v = 7;
      w.send(&v, sizeof v, 1, 3);
    } else {
      std::int32_t v = 0;
      Comm::Request req = w.irecv(&v, sizeof v, 0, 3);
      req.wait();
      EXPECT_EQ(v, 7);
      // A receive completes exactly once; a second wait is a program error
      // (the old behavior -- blocking for a message that will never come
      // again -- hid real bugs behind a hang).
      try {
        req.wait();
        ADD_FAILURE() << "second wait() on a completed receive returned";
      } catch (const MpiError& e) {
        EXPECT_EQ(e.code(), Errc::invalid_argument) << e.what();
      }
      // test() stays idempotent: complete, no re-raise, status refetch ok.
      Status st;
      EXPECT_TRUE(req.test(&st));
      EXPECT_EQ(st.source, 0);
    }
    w.barrier();
  });
}

TEST(RequestLifecycleTest, DestructorCancelsUnmatchedPosting) {
  run(2, Platform::ideal, [] {
    Comm w = world();
    if (rank() == 1) {
      {
        std::int32_t dropped = 0;
        Comm::Request req = w.irecv(&dropped, sizeof dropped, 0, 4);
        (void)req;  // never waited: destructor must cancel the posting
      }
      w.barrier();  // sender posts only after the cancel is done
      // The cancelled posting must not capture (or corrupt) a later
      // message: a fresh receive gets it, bit-exact.
      std::int32_t v = 0;
      const Status st = w.recv(&v, sizeof v, 0, 4);
      EXPECT_EQ(v, 99);
      EXPECT_EQ(st.bytes, sizeof v);
    } else {
      w.barrier();
      const std::int32_t v = 99;
      w.send(&v, sizeof v, 1, 4);
    }
    w.barrier();
  });
}

TEST(RequestLifecycleTest, TruncatedPostedReceiveRaisesAtWait) {
  run(2, Platform::ideal, [] {
    Comm w = world();
    if (rank() == 0) {
      const std::int64_t big = 0x0102030405060708;
      w.send(&big, sizeof big, 1, 6);
    } else {
      std::int16_t small = 0;
      Comm::Request req = w.irecv(&small, sizeof small, 0, 6);
      try {
        req.wait();
        ADD_FAILURE() << "truncated posted receive completed silently";
      } catch (const MpiError& e) {
        EXPECT_EQ(e.code(), Errc::truncation) << e.what();
      }
    }
    w.barrier();
  });
}

TEST(RequestLifecycleTest, MoveTransfersOwnership) {
  run(2, Platform::ideal, [] {
    Comm w = world();
    if (rank() == 0) {
      const std::int32_t v = 11;
      w.send(&v, sizeof v, 1, 8);
    } else {
      std::int32_t v = 0;
      Comm::Request a = w.irecv(&v, sizeof v, 0, 8);
      Comm::Request b = std::move(a);  // moved-from request must be inert
      b.wait();
      EXPECT_EQ(v, 11);
    }
    w.barrier();
  });
}

TEST(MailboxCapTest, EagerFloodRaisesResourceExhaustedAtSender) {
  Config cfg;
  cfg.nranks = 2;
  cfg.platform = Platform::ideal;
  cfg.mailbox_cap_bytes = 4096;
  int raised = 0;
  run(cfg, [&] {
    Comm w = world();
    if (rank() == 0) {
      // Flood a rank that is not receiving: the unexpected queue fills to
      // the cap and the next eager send fails cleanly at the sender
      // instead of growing without bound.
      std::vector<char> chunk(1000, 'x');
      try {
        for (int i = 0; i < 64; ++i)
          w.send(chunk.data(), chunk.size(), 1, 2);
        ADD_FAILURE() << "unbounded eager buffering past the cap";
      } catch (const MpiError& e) {
        EXPECT_EQ(e.code(), Errc::resource_exhausted) << e.what();
        std::lock_guard lk(ctx().core().mu());
        ++raised;
      }
      const char go = 1;
      w.send(&go, 1, 1, 3);  // fits: 4 x 1000 queued leaves slack under the cap
    } else {
      char go = 0;
      w.recv(&go, 1, 0, 3);
      // The receiver can still drain everything that was accepted.
      std::vector<char> chunk(1000);
      for (int i = 0; i < 4; ++i) {
        const Status st = w.recv(chunk.data(), chunk.size(), 0, 2);
        EXPECT_EQ(st.bytes, 1000u);
        EXPECT_EQ(chunk[0], 'x');
      }
    }
    w.barrier();
  });
  EXPECT_EQ(raised, 1);
}

TEST(MailboxCapTest, PostedReceiveIsExemptAndHighWaterTracks) {
  Config cfg;
  cfg.nranks = 2;
  cfg.platform = Platform::ideal;
  cfg.mailbox_cap_bytes = 64;
  run(cfg, [&] {
    Comm w = world();
    if (rank() == 1) {
      // A posted receive consumes the payload on delivery: the cap never
      // sees it, however large.
      std::vector<char> buf(4096);
      Comm::Request req = w.irecv(buf.data(), buf.size(), 0, 2);
      w.barrier();
      Status st;
      req.wait(&st);
      EXPECT_EQ(st.bytes, 4096u);
      w.barrier();
      // Unexpected bytes do count, and the high-water gauge records them.
      w.barrier();
      {
        std::lock_guard lk(ctx().core().mu());
        EXPECT_GE(ctx().core().mailbox(rank()).high_water_bytes(), 48u);
      }
      std::vector<char> chunk(48);
      w.recv(chunk.data(), chunk.size(), 0, 4);
    } else {
      w.barrier();
      std::vector<char> big(4096, 'b');
      w.send(big.data(), big.size(), 1, 2);  // exceeds cap; posted: exempt
      w.barrier();
      std::vector<char> chunk(48, 'c');
      w.send(chunk.data(), chunk.size(), 1, 4);  // 48 <= 64: queued
      w.barrier();
    }
    w.barrier();
  });
}

}  // namespace
}  // namespace mpisim
