// Unit tests for reduction/accumulate operators.

#include "src/mpisim/op.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "src/mpisim/error.hpp"

namespace mpisim {
namespace {

TEST(OpTest, BasicTypeSizes) {
  EXPECT_EQ(basic_type_size(BasicType::byte_), 1u);
  EXPECT_EQ(basic_type_size(BasicType::int32), 4u);
  EXPECT_EQ(basic_type_size(BasicType::int64), 8u);
  EXPECT_EQ(basic_type_size(BasicType::uint64), 8u);
  EXPECT_EQ(basic_type_size(BasicType::float32), 4u);
  EXPECT_EQ(basic_type_size(BasicType::float64), 8u);
}

TEST(OpTest, SumDouble) {
  std::array<double, 3> dst{1.0, 2.0, 3.0};
  std::array<double, 3> src{10.0, 20.0, 30.0};
  apply_op(Op::sum, BasicType::float64, dst.data(), src.data(), 3);
  EXPECT_DOUBLE_EQ(dst[0], 11.0);
  EXPECT_DOUBLE_EQ(dst[1], 22.0);
  EXPECT_DOUBLE_EQ(dst[2], 33.0);
}

TEST(OpTest, ProdInt) {
  std::array<std::int32_t, 2> dst{3, 4};
  std::array<std::int32_t, 2> src{5, -2};
  apply_op(Op::prod, BasicType::int32, dst.data(), src.data(), 2);
  EXPECT_EQ(dst[0], 15);
  EXPECT_EQ(dst[1], -8);
}

TEST(OpTest, MinMax) {
  std::array<std::int64_t, 2> dst{3, 9};
  std::array<std::int64_t, 2> src{5, 2};
  apply_op(Op::min, BasicType::int64, dst.data(), src.data(), 2);
  EXPECT_EQ(dst[0], 3);
  EXPECT_EQ(dst[1], 2);
  dst = {3, 9};
  apply_op(Op::max, BasicType::int64, dst.data(), src.data(), 2);
  EXPECT_EQ(dst[0], 5);
  EXPECT_EQ(dst[1], 9);
}

TEST(OpTest, ReplaceCopiesSource) {
  std::array<double, 2> dst{1.0, 2.0};
  std::array<double, 2> src{-7.5, 8.25};
  apply_op(Op::replace, BasicType::float64, dst.data(), src.data(), 2);
  EXPECT_DOUBLE_EQ(dst[0], -7.5);
  EXPECT_DOUBLE_EQ(dst[1], 8.25);
}

TEST(OpTest, BitwiseOnIntegers) {
  std::array<std::int32_t, 1> dst{0b1100};
  std::array<std::int32_t, 1> src{0b1010};
  apply_op(Op::band, BasicType::int32, dst.data(), src.data(), 1);
  EXPECT_EQ(dst[0], 0b1000);
  dst = {0b1100};
  apply_op(Op::bor, BasicType::int32, dst.data(), src.data(), 1);
  EXPECT_EQ(dst[0], 0b1110);
}

TEST(OpTest, LogicalOnIntegers) {
  std::array<std::int32_t, 3> dst{0, 2, 0};
  std::array<std::int32_t, 3> src{5, 0, 0};
  apply_op(Op::lor, BasicType::int32, dst.data(), src.data(), 3);
  EXPECT_EQ(dst[0], 1);
  EXPECT_EQ(dst[1], 1);
  EXPECT_EQ(dst[2], 0);
}

TEST(OpTest, BitwiseOnFloatThrows) {
  std::array<double, 1> dst{1.0};
  std::array<double, 1> src{2.0};
  EXPECT_THROW(apply_op(Op::band, BasicType::float64, dst.data(), src.data(), 1),
               MpiError);
}

TEST(OpTest, ZeroCountIsNoop) {
  std::array<double, 1> dst{42.0};
  std::array<double, 1> src{7.0};
  apply_op(Op::sum, BasicType::float64, dst.data(), src.data(), 0);
  EXPECT_DOUBLE_EQ(dst[0], 42.0);
}

TEST(OpTest, NamesAreStable) {
  EXPECT_STREQ(op_name(Op::sum), "sum");
  EXPECT_STREQ(op_name(Op::replace), "replace");
  EXPECT_STREQ(basic_type_name(BasicType::float64), "double");
}

// Property sweep: sum over every arithmetic type keeps element independence.
template <typename T>
class OpSumTypedTest : public ::testing::Test {};

using ArithTypes =
    ::testing::Types<std::uint8_t, std::int32_t, std::int64_t, std::uint64_t,
                     float, double>;
TYPED_TEST_SUITE(OpSumTypedTest, ArithTypes);

TYPED_TEST(OpSumTypedTest, ElementwiseIndependence) {
  std::vector<TypeParam> dst(16), src(16);
  for (int i = 0; i < 16; ++i) {
    dst[static_cast<std::size_t>(i)] = static_cast<TypeParam>(i);
    src[static_cast<std::size_t>(i)] = static_cast<TypeParam>(2 * i + 1);
  }
  apply_op(Op::sum, basic_type_of<TypeParam>(), dst.data(), src.data(), 16);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(dst[static_cast<std::size_t>(i)],
              static_cast<TypeParam>(i + 2 * i + 1));
}

}  // namespace
}  // namespace mpisim
