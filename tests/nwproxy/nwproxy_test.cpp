// Tests for the NWChem CCSD(T) proxy: task decoding, amplitude layout,
// the distributed sweep against a serial reference, backend equivalence,
// and load-balance/virtual-time sanity.

#include "src/nwproxy/ccsd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/armci/armci.hpp"
#include "src/mpisim/comm.hpp"
#include "src/mpisim/runtime.hpp"
#include "src/nwproxy/amplitudes.hpp"
#include "src/nwproxy/params.hpp"

namespace nwproxy {
namespace {

using mpisim::Platform;

CcsdParams tiny() {
  CcsdParams p;
  p.no = 4;
  p.nv = 8;
  p.tile = 4;
  p.iterations = 1;
  p.mix = 1.0;  // t2 <- t2new exactly: directly comparable to the reference
  return p;
}

TEST(ParamsTest, W5ScaledKeepsRatios) {
  CcsdParams full = w5_scaled(1.0);
  EXPECT_EQ(full.no, 20);
  EXPECT_EQ(full.nv, 435);
  CcsdParams tenth = w5_scaled(0.1);
  EXPECT_EQ(tenth.no, 4);  // clamped to the minimum
  EXPECT_EQ(tenth.nv, 43);
  EXPECT_GE(tenth.tile, 4);
}

TEST(ParamsTest, TaskCounts) {
  CcsdParams p = tiny();
  // nv^2 = 64, tile^2 = 16 -> 4 pair tiles -> 10 upper-triangular pairs.
  EXPECT_EQ(pair_tiles(p), 4);
  EXPECT_EQ(ccsd_tasks(p), 10);
  // no = 4 -> C(4+2,3) = 20 ordered triples.
  EXPECT_EQ(triples_tasks(p), 20);
  EXPECT_GT(ccsd_task_flops(p), 0.0);
  EXPECT_GT(triples_task_flops(p), 0.0);
}

TEST(AmplitudesTest, TileGeometry) {
  mpisim::run(2, Platform::ideal, [] {
    armci::init({});
    CcsdParams p = tiny();
    p.nv = 9;  // 81 columns, tile^2 = 16 -> 6 tiles, last partial (1 col)
    Amplitudes a = Amplitudes::create(p, "t");
    EXPECT_EQ(a.rows(), 16);
    EXPECT_EQ(a.cols(), 81);
    EXPECT_EQ(a.ntiles(), 6);
    EXPECT_EQ(a.tile_cols(0), (std::pair<std::int64_t, std::int64_t>{0, 15}));
    EXPECT_EQ(a.tile_cols(5), (std::pair<std::int64_t, std::int64_t>{80, 80}));
    EXPECT_EQ(a.tile_width(5), 1);
    a.destroy();
    armci::finalize();
  });
}

TEST(AmplitudesTest, InitReferenceIsGloballyConsistent) {
  mpisim::run(4, Platform::ideal, [] {
    armci::init({});
    CcsdParams p = tiny();
    Amplitudes a = Amplitudes::create(p, "t");
    a.init_reference();
    // Every rank reads a scattered sample and checks against the formula.
    for (std::int64_t r = 0; r < a.rows(); r += 3) {
      for (std::int64_t c = 0; c < a.cols(); c += 7) {
        ga::Patch one;
        one.lo = {r, c};
        one.hi = {r, c};
        double v = 0;
        a.array().get(one, &v);
        EXPECT_DOUBLE_EQ(v, Amplitudes::ref_value(r, c));
      }
    }
    a.destroy();
    armci::finalize();
  });
}

class CcsdBackendTest : public ::testing::TestWithParam<armci::Backend> {
 protected:
  armci::Options opts() const {
    armci::Options o;
    o.backend = GetParam();
    return o;
  }
};

TEST_P(CcsdBackendTest, OneSweepMatchesSerialReference) {
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    const CcsdParams p = tiny();
    Amplitudes t2;
    PhaseResult res = run_ccsd(p, t2);
    EXPECT_EQ(res.total_tasks, ccsd_tasks(p));

    // After one sweep with mix=1, t2 must equal the serial reference.
    const std::int64_t rows = p.no * p.no;
    const std::int64_t cols = p.nv * p.nv;
    std::vector<double> all(static_cast<std::size_t>(rows * cols));
    ga::Patch whole;
    whole.lo = {0, 0};
    whole.hi = {rows - 1, cols - 1};
    t2.array().get(whole, all.data());
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        const double expect =
            ccsd_reference_value(p, r, c, &Amplitudes::ref_value);
        EXPECT_NEAR(all[static_cast<std::size_t>(r * cols + c)], expect,
                    1e-12)
            << "r=" << r << " c=" << c;
      }
    }
    t2.destroy();
    armci::finalize();
  });
}

TEST_P(CcsdBackendTest, AllTasksExecutedExactlyOnce) {
  mpisim::run(8, Platform::ideal, [&] {
    armci::init(opts());
    CcsdParams p = tiny();
    p.iterations = 3;
    Amplitudes t2;
    PhaseResult res = run_ccsd(p, t2);
    std::int64_t total = 0;
    mpisim::world().allreduce(&res.my_tasks, &total, 1,
                              mpisim::BasicType::int64, mpisim::Op::sum);
    EXPECT_EQ(total, 3 * res.total_tasks);
    t2.destroy();
    armci::finalize();
  });
}

TEST_P(CcsdBackendTest, EnergyIsDeterministicAcrossRankCounts) {
  // The physics must not depend on parallelism: run with 2 and 5 ranks and
  // compare the final pseudo-energy.
  const CcsdParams p = [] {
    CcsdParams q = tiny();
    q.iterations = 2;
    q.mix = 0.7;
    return q;
  }();
  double e2 = 0, e5 = 0;
  mpisim::run(2, Platform::ideal, [&] {
    armci::init(opts());
    Amplitudes t2;
    PhaseResult r = run_ccsd(p, t2);
    if (mpisim::rank() == 0) e2 = r.energy;
    t2.destroy();
    armci::finalize();
  });
  mpisim::run(5, Platform::ideal, [&] {
    armci::init(opts());
    Amplitudes t2;
    PhaseResult r = run_ccsd(p, t2);
    if (mpisim::rank() == 0) e5 = r.energy;
    t2.destroy();
    armci::finalize();
  });
  EXPECT_NEAR(e2, e5, 1e-10 * std::abs(e2));
  EXPECT_NE(e2, 0.0);
}

TEST_P(CcsdBackendTest, TriplesEnergyDeterministic) {
  const CcsdParams p = tiny();
  double e3 = 0, e6 = 0;
  for (int nr : {3, 6}) {
    mpisim::run(nr, Platform::ideal, [&] {
      armci::init(opts());
      Amplitudes t2 = Amplitudes::create(p, "t2");
      t2.init_reference();
      PhaseResult r = run_triples(p, t2);
      EXPECT_EQ(r.total_tasks, triples_tasks(p));
      if (mpisim::rank() == 0) (nr == 3 ? e3 : e6) = r.energy;
      t2.destroy();
      armci::finalize();
    });
  }
  EXPECT_NEAR(e3, e6, 1e-10 * std::abs(e3) + 1e-18);
}

TEST_P(CcsdBackendTest, ChunkedTaskClaimsPartitionTheWork) {
  // chunk_tasks > 1 claims task ranges per counter fetch; the claims must
  // still partition the task space exactly (no task lost or duplicated),
  // even when the last chunk is partial.
  mpisim::run(4, Platform::ideal, [&] {
    armci::init(opts());
    CcsdParams p = tiny();
    p.nv = 16;  // 16 tiles -> 136 tasks; 136 % 3 != 0 -> partial last chunk
    p.chunk_tasks = 3;
    Amplitudes t2;
    PhaseResult res = run_ccsd(p, t2);
    std::int64_t total = 0;
    mpisim::world().allreduce(&res.my_tasks, &total, 1,
                              mpisim::BasicType::int64, mpisim::Op::sum);
    EXPECT_EQ(total, res.total_tasks);
    EXPECT_EQ(res.total_tasks, 136);
    t2.destroy();
    armci::finalize();
  });
}

TEST_P(CcsdBackendTest, VirtualTimeIsPositiveOnRealPlatforms) {
  mpisim::run(4, Platform::infiniband, [&] {
    armci::init(opts());
    const CcsdParams p = tiny();
    Amplitudes t2;
    PhaseResult ccsd = run_ccsd(p, t2);
    EXPECT_GT(ccsd.virtual_seconds, 0.0);
    PhaseResult tr = run_triples(p, t2);
    EXPECT_GT(tr.virtual_seconds, 0.0);
    t2.destroy();
    armci::finalize();
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, CcsdBackendTest,
                         ::testing::Values(armci::Backend::mpi,
                                           armci::Backend::native,
                                           armci::Backend::mpi3),
                         [](const auto& info) {
                           switch (info.param) {
                             case armci::Backend::mpi: return "Mpi";
                             case armci::Backend::native: return "Native";
                             case armci::Backend::mpi3: return "Mpi3";
                           }
                           return "?";
                         });

// Backend equivalence: identical physics from ARMCI-MPI and ARMCI-Native.
TEST(CcsdCrossBackendTest, BackendsAgreeOnEnergy) {
  const CcsdParams p = [] {
    CcsdParams q = tiny();
    q.iterations = 2;
    q.mix = 0.4;
    return q;
  }();
  double em = 0, en = 0;
  for (armci::Backend b : {armci::Backend::mpi, armci::Backend::native}) {
    mpisim::run(4, Platform::cray_xe6, [&] {
      armci::Options o;
      o.backend = b;
      armci::init(o);
      Amplitudes t2;
      PhaseResult r = run_ccsd(p, t2);
      if (mpisim::rank() == 0) (b == armci::Backend::mpi ? em : en) = r.energy;
      t2.destroy();
      armci::finalize();
    });
  }
  EXPECT_NEAR(em, en, 1e-10 * std::abs(em));
}

}  // namespace
}  // namespace nwproxy
