// Active-message layer (src/am): rpc round trips and completion levels,
// fire-and-forget delegates under the termination detector, serve-while-
// waiting (mutual rpc without deadlock), the serving barrier, registry and
// argument bounds, metrics export, and the happens-before persona
// semantics of handler memory effects (MPISIM_RMA_CHECK=race).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/am/am.hpp"
#include "src/armci/armci.hpp"
#include "src/armci/metrics.hpp"
#include "src/mpisim/error.hpp"
#include "src/mpisim/runtime.hpp"

namespace am {
namespace {

using mpisim::Errc;
using mpisim::MpiError;

mpisim::Config cfg2(int nranks) {
  mpisim::Config cfg;
  cfg.nranks = nranks;
  cfg.platform = mpisim::Platform::ideal;
  return cfg;
}

struct Pair {
  std::int64_t a = 0;
  std::int64_t b = 0;
};

TEST(AmTest, RpcRoundTripEchoesAndCounts) {
  mpisim::run(cfg2(2), [&] {
    armci::init();
    am::init();
    std::uint64_t served_here = 0;
    const int h_swap = am::register_handler(
        [&](int src, const void* a, std::size_t n, void* r, std::size_t) {
          EXPECT_EQ(n, sizeof(Pair));
          Pair p;
          std::memcpy(&p, a, sizeof p);
          std::swap(p.a, p.b);
          p.a += src;  // prove the handler saw the requester's rank
          std::memcpy(r, &p, sizeof p);
          ++served_here;
          return sizeof p;
        });
    armci::barrier();
    if (mpisim::rank() == 0) {
      Pair p{3, 4};
      Handle h = rpc(1, h_swap, &p, sizeof p);
      h.wait();
      const Pair out = h.reply_as<Pair>();
      EXPECT_EQ(out.a, 4);  // swapped, + src 0
      EXPECT_EQ(out.b, 3);
      EXPECT_EQ(h.reply().size(), sizeof(Pair));
      EXPECT_EQ(armci::stats().am_sent, 1u);
    } else {
      poll_wait([&] { return served_here >= 1; });
      EXPECT_GE(armci::stats().am_served, 1u);
    }
    am::barrier();
    am::finalize();
    armci::finalize();
  });
}

TEST(AmTest, CompletionLevelsSourceThenOperation) {
  mpisim::run(cfg2(2), [&] {
    armci::init();
    am::init();
    const int h_echo = am::register_handler(
        [](int, const void* a, std::size_t n, void* r, std::size_t) {
          std::memcpy(r, a, n);
          return n;
        });
    armci::barrier();
    if (mpisim::rank() == 0) {
      const std::int32_t v = 5;
      Handle h = rpc(1, h_echo, &v, sizeof v);
      // Local completion holds as soon as rpc() returns: the argument was
      // captured into the message.
      EXPECT_TRUE(h.test(armci::Completion::source));
      h.wait();
      EXPECT_TRUE(h.test(armci::Completion::operation));
      EXPECT_EQ(h.reply_as<std::int32_t>(), 5);
      bool fired = false;
      h.on_complete(armci::Completion::operation, [&](std::exception_ptr e) {
        EXPECT_EQ(e, nullptr);
        fired = true;
      });
      EXPECT_TRUE(fired);  // already complete: immediate
    } else {
      poll_wait([&] { return armci::stats().am_served >= 1; });
    }
    am::barrier();
    am::finalize();
    armci::finalize();
  });
}

TEST(AmTest, OnCompleteCallbackFiresAtReply) {
  mpisim::run(cfg2(2), [&] {
    armci::init();
    am::init();
    const int h_echo = am::register_handler(
        [](int, const void* a, std::size_t n, void* r, std::size_t) {
          std::memcpy(r, a, n);
          return n;
        });
    armci::barrier();
    if (mpisim::rank() == 0) {
      const std::int32_t v = 9;
      Handle h = rpc(1, h_echo, &v, sizeof v);
      bool fired = false;
      h.on_complete(armci::Completion::operation, [&](std::exception_ptr e) {
        EXPECT_EQ(e, nullptr);
        fired = true;
      });
      EXPECT_FALSE(fired);  // reply not yet here
      h.wait();
      EXPECT_TRUE(fired);  // fired by completion, before wait returned
    } else {
      poll_wait([&] { return armci::stats().am_served >= 1; });
    }
    am::barrier();
    am::finalize();
    armci::finalize();
  });
}

TEST(AmTest, FireAndForgetQuiescesUnderTerminationDetector) {
  mpisim::run(cfg2(4), [&] {
    armci::init();
    am::init();
    std::int64_t counter = 0;
    const int h_add = am::register_handler(
        [&](int, const void* a, std::size_t n, void*, std::size_t) {
          std::int64_t d = 0;
          std::memcpy(&d, a, n < sizeof d ? n : sizeof d);
          counter += d;
          return std::size_t{0};
        });
    armci::barrier();
    const int target = (mpisim::rank() + 1) % mpisim::nranks();
    const std::int64_t delta = 1;
    for (int i = 0; i < 10; ++i)
      rpc_ff(target, h_add, &delta, sizeof delta, /*gce=*/1);
    quiesce(1);
    // Termination: every delegate aimed at us has been served.
    EXPECT_EQ(counter, 10);
    EXPECT_EQ(armci::stats().am_terminations, 1u);
    EXPECT_GE(armci::stats().am_served, 10u);
    am::finalize();  // runs quiesce(0): empty counter, second termination
    EXPECT_EQ(armci::stats().am_terminations, 2u);
    armci::finalize();
  });
}

TEST(AmTest, MutualRpcServesWhileWaiting) {
  mpisim::run(cfg2(2), [&] {
    armci::init();
    am::init();
    const int h_double = am::register_handler(
        [](int, const void* a, std::size_t, void* r, std::size_t) {
          std::int64_t v = 0;
          std::memcpy(&v, a, sizeof v);
          v *= 2;
          std::memcpy(r, &v, sizeof v);
          return sizeof v;
        });
    armci::barrier();
    // Both ranks rpc each other and wait: wait() serves inbound requests,
    // so the cross pair cannot deadlock.
    const std::int64_t mine = 10 + mpisim::rank();
    Handle h = rpc(1 - mpisim::rank(), h_double, &mine, sizeof mine);
    h.wait();
    EXPECT_EQ(h.reply_as<std::int64_t>(), 2 * (10 + mpisim::rank()));
    am::barrier();
    am::finalize();
    armci::finalize();
  });
}

TEST(AmTest, ServingBarrierReleasesStaggeredRanks) {
  mpisim::run(cfg2(4), [&] {
    armci::init();
    am::init();
    std::int64_t bumps = 0;
    const int h_bump = am::register_handler(
        [&](int, const void*, std::size_t, void*, std::size_t) {
          ++bumps;
          return std::size_t{0};
        });
    armci::barrier();
    // Every rank delegates one bump to every other, staggers its clock,
    // and enters the serving barrier: the barrier must keep serving, and
    // after quiesce + barrier everyone saw every bump.
    mpisim::clock().advance(1e6 * mpisim::rank());
    for (int r = 0; r < mpisim::nranks(); ++r)
      if (r != mpisim::rank()) rpc_ff(r, h_bump, nullptr, 0);
    quiesce();
    am::barrier();
    EXPECT_EQ(bumps, mpisim::nranks() - 1);
    am::finalize();
    armci::finalize();
  });
}

TEST(AmTest, RegistryAndArgumentBounds) {
  mpisim::run(cfg2(1), [&] {
    armci::init();
    am::init();
    const Handler noop = [](int, const void*, std::size_t, void*,
                            std::size_t) { return std::size_t{0}; };
    // One slot is the layer's internal control handler.
    std::size_t registered = 0;
    try {
      for (std::size_t i = 0; i < kMaxHandlers + 1; ++i) {
        register_handler(noop);
        ++registered;
      }
      ADD_FAILURE() << "handler registry is unbounded";
    } catch (const MpiError& e) {
      EXPECT_EQ(e.code(), Errc::resource_exhausted) << e.what();
    }
    EXPECT_EQ(registered, kMaxHandlers - 1);
    const std::vector<std::uint8_t> big(kMaxArgBytes + 1);
    try {
      rpc_ff(0, 1, big.data(), big.size());
      ADD_FAILURE() << "oversized argument accepted";
    } catch (const MpiError& e) {
      EXPECT_EQ(e.code(), Errc::invalid_argument) << e.what();
    }
    try {
      rpc(7, 1, nullptr, 0);
      ADD_FAILURE() << "out-of-range target accepted";
    } catch (const MpiError& e) {
      EXPECT_EQ(e.code(), Errc::rank_out_of_range) << e.what();
    }
    am::finalize();
    armci::finalize();
  });
}

TEST(AmTest, UsableOnlyBetweenInitAndFinalize) {
  mpisim::run(cfg2(1), [&] {
    armci::init();
    EXPECT_FALSE(initialized());
    EXPECT_EQ(poll(), 0);  // polling while detached is a harmless no-op
    try {
      rpc(0, 0, nullptr, 0);
      ADD_FAILURE() << "rpc before am::init succeeded";
    } catch (const MpiError& e) {
      EXPECT_EQ(e.code(), Errc::invalid_argument) << e.what();
    }
    am::init();
    EXPECT_TRUE(initialized());
    am::finalize();
    EXPECT_FALSE(initialized());
    armci::finalize();
  });
}

TEST(AmTest, MetricsJsonExportsAmCounters) {
  mpisim::run(cfg2(2), [&] {
    armci::init();
    am::init();
    const int h_echo = am::register_handler(
        [](int, const void* a, std::size_t n, void* r, std::size_t) {
          std::memcpy(r, a, n);
          return n;
        });
    armci::barrier();
    if (mpisim::rank() == 0) {
      const std::int32_t v = 1;
      rpc(1, h_echo, &v, sizeof v).wait();
      const std::string j = armci::metrics_json();
      EXPECT_NE(j.find("\"am\":{\"am_sent\":1,"), std::string::npos) << j;
    } else {
      poll_wait([&] { return armci::stats().am_served >= 1; });
      const std::string j = armci::metrics_json();
      EXPECT_NE(j.find("\"am_served\":1,"), std::string::npos) << j;
    }
    am::barrier();
    am::finalize();
    armci::finalize();
  });
}

// ---------------------------------------------------------------------------
// Happens-before persona semantics of handler memory effects
// ---------------------------------------------------------------------------

// Other CI legs re-run this binary under MPISIM_RMA_CHECK=abort/warn, which
// overrides the race detector these tests depend on.
#define SKIP_UNLESS_RACE_MODE()                                             \
  do {                                                                      \
    const char* rc_ = std::getenv("MPISIM_RMA_CHECK");                      \
    if (rc_ != nullptr && std::string(rc_) != "race")                       \
      GTEST_SKIP() << "MPISIM_RMA_CHECK=" << rc_                            \
                   << " overrides the race detector";                       \
  } while (0)

mpisim::Config race_cfg(int nranks) {
  mpisim::Config cfg;
  cfg.nranks = nranks;
  cfg.platform = mpisim::Platform::ideal;
  cfg.check_conflicts = false;
  cfg.rma_check = mpisim::RmaCheck::race;
  return cfg;
}

// Positive: a handler writes the target's global buffer (declared via
// am::touch) under the progress persona's identity. The origin reads that
// buffer after the handler ran but WITHOUT completing the handle: no edge
// hands it the persona's clock, so the read races -- exactly like touching
// an unretired nonblocking operation's destination.
TEST(AmHbRacePositiveTest, ReadOfHandlerWriteBeforeCompletionRaces) {
  SKIP_UNLESS_RACE_MODE();
  std::atomic<bool> handler_ran{false};
  mpisim::Config cfg = race_cfg(2);
  cfg.ranks_per_node = 1;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = armci::Backend::mpi3;
    armci::init(o);
    am::init();
    constexpr std::size_t kBytes = 64;
    std::vector<void*> bases = armci::malloc_world(kBytes);
    const int h_fill = am::register_handler(
        [&](int, const void*, std::size_t, void*, std::size_t) {
          void* mine = bases[static_cast<std::size_t>(mpisim::rank())];
          std::memset(mine, 0x5a, kBytes);
          am::touch(mine, kBytes, /*write=*/true);
          return std::size_t{0};
        });
    armci::barrier();
    if (mpisim::rank() == 0) {
      Handle h = rpc(1, h_fill, nullptr, 0);
      // Host-order the read after the handler without any simulator edge
      // (a sim message from rank 1 would hand us the persona clock via the
      // owner's post-serve join and hide the race).
      while (!handler_ran.load(std::memory_order_acquire))
        std::this_thread::yield();
      char priv[kBytes] = {0};
      try {
        armci::get(bases[1], priv, kBytes, 1);
        ADD_FAILURE() << "read of uncompleted handler write not flagged";
      } catch (const MpiError& e) {
        EXPECT_EQ(e.code(), Errc::rma_race) << e.what();
      }
      EXPECT_GE(armci::stats().rma_races, 1u);
      // The reply is still consumable; completion surfaces no error.
      h.wait();
    } else {
      poll_wait([&] { return armci::stats().am_served >= 1; });
      handler_ran.store(true, std::memory_order_release);
    }
    am::barrier();
    armci::free(bases[static_cast<std::size_t>(mpisim::rank())]);
    am::finalize();
    armci::finalize();
  });
}

// Negative: identical flow, but the origin completes the handle first. The
// reply carries the persona's clock, so the read is ordered and clean.
TEST(AmHbRaceTest, ReadAfterCompletionIsClean) {
  SKIP_UNLESS_RACE_MODE();
  mpisim::Config cfg = race_cfg(2);
  cfg.ranks_per_node = 1;
  mpisim::run(cfg, [&] {
    armci::Options o;
    o.backend = armci::Backend::mpi3;
    armci::init(o);
    am::init();
    constexpr std::size_t kBytes = 64;
    std::vector<void*> bases = armci::malloc_world(kBytes);
    const int h_fill = am::register_handler(
        [&](int, const void*, std::size_t, void*, std::size_t) {
          void* mine = bases[static_cast<std::size_t>(mpisim::rank())];
          std::memset(mine, 0x5a, kBytes);
          am::touch(mine, kBytes, /*write=*/true);
          return std::size_t{0};
        });
    armci::barrier();
    if (mpisim::rank() == 0) {
      Handle h = rpc(1, h_fill, nullptr, 0);
      h.wait();  // completion edge: the reply hands us the persona clock
      char priv[kBytes] = {0};
      armci::get(bases[1], priv, kBytes, 1);
      EXPECT_EQ(priv[0], 0x5a);
      EXPECT_EQ(priv[kBytes - 1], 0x5a);
      EXPECT_EQ(armci::stats().rma_races, 0u);
    } else {
      poll_wait([&] { return armci::stats().am_served >= 1; });
    }
    am::barrier();
    EXPECT_EQ(armci::stats().rma_races, 0u);
    armci::free(bases[static_cast<std::size_t>(mpisim::rank())]);
    am::finalize();
    armci::finalize();
  });
}

}  // namespace
}  // namespace am
